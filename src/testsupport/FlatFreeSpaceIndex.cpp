//===- testsupport/FlatFreeSpaceIndex.cpp - Oracle flat index ------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "testsupport/FlatFreeSpaceIndex.h"

#include "support/MathUtils.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace pcb;

FlatFreeSpaceIndex::FlatFreeSpaceIndex() {
  for (unsigned K = 0; K != NumClasses; ++K)
    ClassMin[K] = AddrLimit;
  insertBlock(0, AddrLimit);
  classAdd(AddrLimit, 0);
}

unsigned FlatFreeSpaceIndex::classOf(uint64_t Size) {
  assert(Size != 0 && "zero-size block");
  unsigned K = log2Floor(Size);
  return K < NumClasses ? K : NumClasses - 1;
}

//===----------------------------------------------------------------------===//
// Leaf plumbing
//===----------------------------------------------------------------------===//

FlatFreeSpaceIndex::Leaf *FlatFreeSpaceIndex::newLeaf() {
  if (!FreeLeaves.empty()) {
    Leaf *L = FreeLeaves.back();
    FreeLeaves.pop_back();
    L->Count = 0;
    return L;
  }
  Pool.push_back(std::make_unique<Leaf>());
  return Pool.back().get();
}

void FlatFreeSpaceIndex::recycleLeaf(Leaf *L) { FreeLeaves.push_back(L); }

size_t FlatFreeSpaceIndex::leafFor(Addr A) const {
  // Last directory entry with FirstStart <= A. The directory is small
  // (Cap blocks per leaf), so this binary search is shallow.
  size_t Lo = 0, Hi = Dir.size();
  while (Lo < Hi) {
    size_t Mid = (Lo + Hi) / 2;
    if (Dir[Mid].FirstStart <= A)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return Lo == 0 ? NoLeaf : Lo - 1;
}

uint32_t FlatFreeSpaceIndex::slotUpperBound(const Leaf &L, Addr A) {
  return uint32_t(std::upper_bound(L.Starts, L.Starts + L.Count, A) -
                  L.Starts);
}

uint32_t FlatFreeSpaceIndex::slotLowerBound(const Leaf &L, Addr A) {
  return uint32_t(std::lower_bound(L.Starts, L.Starts + L.Count, A) -
                  L.Starts);
}

void FlatFreeSpaceIndex::refreshSummary(size_t Li) {
  LeafMeta &M = Dir[Li];
  const Leaf &L = *M.L;
  assert(L.Count != 0 && "summarizing an empty leaf");
  M.FirstStart = L.Starts[0];
  M.Count = L.Count;
  uint64_t MaxSize = 0;
  uint64_t Mask = 0;
  for (uint32_t I = 0; I != L.Count; ++I) {
    uint64_t Size = L.Ends[I] - L.Starts[I];
    MaxSize = std::max(MaxSize, Size);
    Mask |= uint64_t(1) << classOf(Size);
  }
  M.MaxSize = MaxSize;
  M.ClassMask = Mask;
}

void FlatFreeSpaceIndex::insertSlot(size_t Li, uint32_t Slot, Addr S, Addr E) {
  Leaf *L = Dir[Li].L;
  if (L->Count == Leaf::Cap) {
    // Split: move the upper half into a fresh leaf directly after Li.
    constexpr uint32_t Half = Leaf::Cap / 2;
    Leaf *NL = newLeaf();
    std::memcpy(NL->Starts, L->Starts + Half, Half * sizeof(Addr));
    std::memcpy(NL->Ends, L->Ends + Half, Half * sizeof(Addr));
    NL->Count = Half;
    L->Count = Half;
    Dir.insert(Dir.begin() + Li + 1,
               LeafMeta{NL->Starts[0], 0, 0, Half, NL});
    refreshSummary(Li);
    refreshSummary(Li + 1);
    if (Slot > Half) {
      ++Li;
      Slot -= Half;
      L = NL;
    }
  }
  assert(Slot <= L->Count && "slot out of range");
  std::memmove(L->Starts + Slot + 1, L->Starts + Slot,
               (L->Count - Slot) * sizeof(Addr));
  std::memmove(L->Ends + Slot + 1, L->Ends + Slot,
               (L->Count - Slot) * sizeof(Addr));
  L->Starts[Slot] = S;
  L->Ends[Slot] = E;
  ++L->Count;
  refreshSummary(Li);
}

void FlatFreeSpaceIndex::eraseSlot(size_t Li, uint32_t Slot) {
  Leaf *L = Dir[Li].L;
  assert(Slot < L->Count && "slot out of range");
  std::memmove(L->Starts + Slot, L->Starts + Slot + 1,
               (L->Count - Slot - 1) * sizeof(Addr));
  std::memmove(L->Ends + Slot, L->Ends + Slot + 1,
               (L->Count - Slot - 1) * sizeof(Addr));
  if (--L->Count == 0) {
    recycleLeaf(L);
    Dir.erase(Dir.begin() + Li);
    return;
  }
  refreshSummary(Li);
}

void FlatFreeSpaceIndex::insertBlock(Addr S, Addr E) {
  assert(S < E && "empty free block");
  size_t Li = leafFor(S);
  if (Li == NoLeaf) {
    if (Dir.empty()) {
      Leaf *L = newLeaf();
      L->Starts[0] = S;
      L->Ends[0] = E;
      L->Count = 1;
      Dir.push_back(LeafMeta{S, E - S, uint64_t(1) << classOf(E - S), 1, L});
      return;
    }
    insertSlot(0, 0, S, E);
    return;
  }
  insertSlot(Li, slotUpperBound(*Dir[Li].L, S), S, E);
}

//===----------------------------------------------------------------------===//
// Size-class summary
//===----------------------------------------------------------------------===//

void FlatFreeSpaceIndex::classAdd(uint64_t Size, Addr Start) {
  unsigned K = classOf(Size);
  ++ClassCount[K];
  ClassBits |= uint64_t(1) << K;
  ClassMin[K] = std::min(ClassMin[K], Start);
  ++TotalBlocks;
}

void FlatFreeSpaceIndex::classRemove(uint64_t Size) {
  unsigned K = classOf(Size);
  assert(ClassCount[K] != 0 && "class count underflow");
  if (--ClassCount[K] == 0) {
    ClassBits &= ~(uint64_t(1) << K);
    // The cache self-heals whenever a class empties: the next insert
    // makes it exact again.
    ClassMin[K] = AddrLimit;
  }
  --TotalBlocks;
}

Addr FlatFreeSpaceIndex::fitScanHint(unsigned MinClass) const {
  // Every block of size >= 2^MinClass lives in a class >= MinClass, and
  // starts at or after its class's cached minimum, so no fit can begin
  // before the smallest of those minima.
  Addr Hint = AddrLimit;
  for (uint64_t Bits = ClassBits >> MinClass; Bits != 0; Bits &= Bits - 1) {
    unsigned K = MinClass + unsigned(log2Floor(Bits & -Bits));
    Hint = std::min(Hint, ClassMin[K]);
  }
  return Hint;
}

//===----------------------------------------------------------------------===//
// Mutation
//===----------------------------------------------------------------------===//

void FlatFreeSpaceIndex::release(Addr Start, uint64_t Size) {
  assert(Size != 0 && "releasing zero words");
  Addr End = Start + Size;

  // Predecessor: last block beginning at or before Start. A block
  // beginning inside (Start, End) means the range is being
  // double-released (one beginning exactly at End is fine: it is the
  // coalescing successor).
  size_t PLi = leafFor(Start);
  uint32_t PSlot = 0;
  bool HasPred = PLi != NoLeaf;
  Addr PStart = 0, PEnd = 0;
  if (HasPred) {
    PSlot = slotUpperBound(*Dir[PLi].L, Start);
    assert(PSlot != 0 && "leaf lookup missed the predecessor");
    --PSlot;
    PStart = Dir[PLi].L->Starts[PSlot];
    PEnd = Dir[PLi].L->Ends[PSlot];
    assert(PEnd <= Start && "releasing a range that is partly free");
  }

  // Successor: the block right after the predecessor (or the very first
  // block when there is none).
  size_t SLi = 0;
  uint32_t SSlot = 0;
  bool HasSucc;
  if (!HasPred) {
    HasSucc = !Dir.empty();
  } else if (PSlot + 1 < Dir[PLi].Count) {
    SLi = PLi;
    SSlot = PSlot + 1;
    HasSucc = true;
  } else if (PLi + 1 < Dir.size()) {
    SLi = PLi + 1;
    SSlot = 0;
    HasSucc = true;
  } else {
    HasSucc = false;
  }
  Addr SStart = 0, SEnd = 0;
  if (HasSucc) {
    SStart = Dir[SLi].L->Starts[SSlot];
    SEnd = Dir[SLi].L->Ends[SSlot];
    assert(SStart >= End && "releasing a range that is partly free");
  }

  bool Left = HasPred && PEnd == Start;
  bool Right = HasSucc && SStart == End;
  if (Left && Right) {
    classRemove(PEnd - PStart);
    classRemove(SEnd - SStart);
    Dir[PLi].L->Ends[PSlot] = SEnd;
    classAdd(SEnd - PStart, PStart);
    // Erase the successor first: it never precedes the predecessor, so
    // PLi stays valid; refresh last.
    eraseSlot(SLi, SSlot);
    refreshSummary(PLi);
  } else if (Left) {
    classRemove(PEnd - PStart);
    Dir[PLi].L->Ends[PSlot] = End;
    classAdd(End - PStart, PStart);
    refreshSummary(PLi);
  } else if (Right) {
    classRemove(SEnd - SStart);
    Dir[SLi].L->Starts[SSlot] = Start;
    classAdd(SEnd - Start, Start);
    refreshSummary(SLi);
  } else {
    if (HasPred)
      insertSlot(PLi, PSlot + 1, Start, End);
    else
      insertBlock(Start, End);
    classAdd(Size, Start);
  }
}

void FlatFreeSpaceIndex::reserve(Addr Start, uint64_t Size) {
  assert(Size != 0 && "reserving zero words");
  Addr End = Start + Size;
  size_t Li = leafFor(Start);
  assert(Li != NoLeaf && "reserve target is not free");
  Leaf *L = Dir[Li].L;
  uint32_t Slot = slotUpperBound(*L, Start);
  assert(Slot != 0 && "leaf lookup missed the containing block");
  --Slot;
  Addr BStart = L->Starts[Slot];
  Addr BEnd = L->Ends[Slot];
  assert(BStart <= Start && End <= BEnd &&
         "reserve target is not entirely free");
  classRemove(BEnd - BStart);
  bool KeepLow = BStart < Start;
  bool KeepHigh = End < BEnd;
  if (KeepLow && KeepHigh) {
    L->Ends[Slot] = Start;
    classAdd(Start - BStart, BStart);
    classAdd(BEnd - End, End);
    insertSlot(Li, Slot + 1, End, BEnd); // refreshes summaries
  } else if (KeepLow) {
    L->Ends[Slot] = Start;
    classAdd(Start - BStart, BStart);
    refreshSummary(Li);
  } else if (KeepHigh) {
    L->Starts[Slot] = End;
    classAdd(BEnd - End, End);
    refreshSummary(Li);
  } else {
    eraseSlot(Li, Slot);
  }
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

bool FlatFreeSpaceIndex::isFree(Addr Start, uint64_t Size) const {
  assert(Size != 0 && "querying zero words");
  size_t Li = leafFor(Start);
  if (Li == NoLeaf)
    return false;
  const Leaf &L = *Dir[Li].L;
  uint32_t Slot = slotUpperBound(L, Start);
  if (Slot == 0)
    return false;
  --Slot;
  return L.Starts[Slot] <= Start && Start + Size <= L.Ends[Slot];
}

Addr FlatFreeSpaceIndex::firstFit(uint64_t Size) const {
  return firstFitFrom(0, Size);
}

Addr FlatFreeSpaceIndex::firstFitFrom(Addr From, uint64_t Size) const {
  assert(Size != 0 && "zero-size fit query");
  // A block containing From may serve the request from From onward.
  if (From != 0) {
    size_t Li = leafFor(From);
    if (Li != NoLeaf) {
      const Leaf &L = *Dir[Li].L;
      uint32_t Slot = slotUpperBound(L, From);
      if (Slot != 0 && L.Ends[Slot - 1] > From &&
          L.Ends[Slot - 1] - From >= Size)
        return From;
    }
  }
  // No fitting block can begin before the class cache's hint, so start
  // the directory walk there; per-leaf MaxSize prunes the rest.
  Addr ScanFrom = std::max(From, fitScanHint(classOf(Size)));
  size_t Li = 0;
  uint32_t Slot = 0;
  if (ScanFrom != 0) {
    size_t At = leafFor(ScanFrom);
    if (At != NoLeaf) {
      Li = At;
      Slot = slotLowerBound(*Dir[At].L, ScanFrom);
    }
  }
  for (; Li != Dir.size(); ++Li, Slot = 0) {
    const LeafMeta &M = Dir[Li];
    if (M.MaxSize < Size)
      continue;
    const Leaf &L = *M.L;
    for (uint32_t I = Slot; I != M.Count; ++I) {
      if (L.Ends[I] - L.Starts[I] >= Size) {
        return L.Starts[I];
      }
    }
  }
  assert(false && "infinite tail should always fit");
  return InvalidAddr;
}

Addr FlatFreeSpaceIndex::bestFit(uint64_t Size) const {
  assert(Size != 0 && "zero-size fit query");
  unsigned K = classOf(Size);
  uint64_t BestSize = UINT64_MAX;
  Addr BestStart = InvalidAddr;
  // The boundary class holds sizes in [2^K, 2^(K+1)): blocks there fit
  // iff their exact size does, and any that fits is tighter than every
  // block of a higher class. The address-ordered scan makes "first block
  // of the minimal size" the lowest-address tie-break for free.
  if ((ClassBits >> K) & 1) {
    for (const LeafMeta &M : Dir) {
      if (!((M.ClassMask >> K) & 1))
        continue;
      const Leaf &L = *M.L;
      for (uint32_t I = 0; I != M.Count; ++I) {
        uint64_t BSize = L.Ends[I] - L.Starts[I];
        if (BSize >= Size && BSize < BestSize && classOf(BSize) == K) {
          BestSize = BSize;
          BestStart = L.Starts[I];
          if (BestSize == Size)
            return BestStart; // exact fit: nothing can be tighter
        }
      }
    }
  }
  if (BestStart != InvalidAddr)
    return BestStart;
  // Otherwise the tightest fit lives in the lowest non-empty class above
  // K (its sizes are all smaller than any higher class's).
  uint64_t Higher = K + 1 < 64 ? ClassBits >> (K + 1) << (K + 1) : 0;
  assert(Higher != 0 && "infinite tail should always fit");
  unsigned K2 = unsigned(log2Floor(Higher & -Higher));
  uint64_t ClassFloor = uint64_t(1) << K2;
  for (const LeafMeta &M : Dir) {
    if (!((M.ClassMask >> K2) & 1))
      continue;
    const Leaf &L = *M.L;
    for (uint32_t I = 0; I != M.Count; ++I) {
      uint64_t BSize = L.Ends[I] - L.Starts[I];
      if (BSize < BestSize && classOf(BSize) == K2) {
        BestSize = BSize;
        BestStart = L.Starts[I];
        if (BestSize == ClassFloor)
          return BestStart; // class minimum: nothing can be tighter
      }
    }
  }
  assert(BestStart != InvalidAddr && "infinite tail should always fit");
  return BestStart;
}

Addr FlatFreeSpaceIndex::firstFitAligned(uint64_t Size, uint64_t Align) const {
  assert(Size != 0 && "zero-size fit query");
  assert(isPowerOfTwo(Align) && "alignment must be a power of two");
  // Blocks are disjoint and address-ordered, so the first block (by
  // address) that admits an aligned placement yields the lowest aligned
  // address overall: a later block's candidate starts past this block's
  // end. Only blocks of size >= Size can admit one.
  Addr ScanFrom = fitScanHint(classOf(Size));
  size_t Li = 0;
  if (ScanFrom != 0) {
    size_t At = leafFor(ScanFrom);
    if (At != NoLeaf)
      Li = At;
  }
  for (; Li != Dir.size(); ++Li) {
    const LeafMeta &M = Dir[Li];
    if (M.MaxSize < Size)
      continue;
    const Leaf &L = *M.L;
    for (uint32_t I = 0; I != M.Count; ++I) {
      if (L.Ends[I] - L.Starts[I] < Size)
        continue;
      Addr Aligned = alignUp(L.Starts[I], Align);
      if (Aligned < L.Ends[I] && L.Ends[I] - Aligned >= Size) {
        return Aligned;
      }
    }
  }
  assert(false && "infinite tail should always fit");
  return InvalidAddr;
}

Addr FlatFreeSpaceIndex::firstFitBelow(uint64_t Size, Addr Limit) const {
  assert(Size != 0 && "zero-size fit query");
  // Blocks are address-ordered, so if the overall first fit does not end
  // below the limit, no later block can either.
  Addr A = firstFit(Size);
  return A + Size <= Limit ? A : InvalidAddr;
}

Addr FlatFreeSpaceIndex::worstFitBelow(uint64_t Size, Addr Limit) const {
  assert(Size != 0 && "zero-size fit query");
  Addr Best = InvalidAddr;
  uint64_t BestSpan = 0;
  for (size_t Li = 0; Li != Dir.size(); ++Li) {
    const LeafMeta &M = Dir[Li];
    if (M.FirstStart >= Limit)
      break;
    // A clipped span never exceeds the block's size, so a leaf whose
    // largest block cannot beat the incumbent (strictly — ties keep the
    // lower address) is skipped whole.
    if (M.MaxSize < Size || M.MaxSize <= BestSpan)
      continue;
    const Leaf &L = *M.L;
    for (uint32_t I = 0; I != M.Count && L.Starts[I] < Limit; ++I) {
      uint64_t Span = std::min<Addr>(L.Ends[I], Limit) - L.Starts[I];
      if (Span >= Size && Span > BestSpan) {
        BestSpan = Span;
        Best = L.Starts[I];
      }
    }
  }
  return Best;
}

uint64_t FlatFreeSpaceIndex::freeWordsIn(Addr Start, Addr End) const {
  assert(Start < End && "empty query range");
  uint64_t Free = 0;
  size_t Li = 0;
  uint32_t Slot = 0;
  if (Start != 0) {
    size_t At = leafFor(Start);
    if (At != NoLeaf) {
      Li = At;
      // Include the block possibly straddling Start.
      uint32_t Ub = slotUpperBound(*Dir[At].L, Start);
      Slot = Ub == 0 ? 0 : Ub - 1;
    }
  }
  for (; Li != Dir.size(); ++Li, Slot = 0) {
    const Leaf &L = *Dir[Li].L;
    for (uint32_t I = Slot; I != Dir[Li].Count; ++I) {
      if (L.Starts[I] >= End)
        return Free;
      Addr Lo = std::max<Addr>(L.Starts[I], Start);
      Addr Hi = std::min<Addr>(L.Ends[I], End);
      if (Hi > Lo)
        Free += Hi - Lo;
    }
  }
  return Free;
}

uint64_t FlatFreeSpaceIndex::freeWordsBelow(Addr Limit) const {
  return Limit == 0 ? 0 : freeWordsIn(0, Limit);
}

size_t FlatFreeSpaceIndex::numBlocksBelow(Addr Limit) const {
  size_t N = 0;
  for (size_t Li = 0; Li != Dir.size(); ++Li) {
    const LeafMeta &M = Dir[Li];
    if (M.FirstStart >= Limit)
      break;
    // Blocks are disjoint and sorted, so every start in this leaf is
    // below the next leaf's FirstStart: when that is still below the
    // limit, the whole leaf counts without touching it.
    if (Li + 1 != Dir.size() && Dir[Li + 1].FirstStart <= Limit) {
      N += M.Count;
      continue;
    }
    N += slotLowerBound(*M.L, Limit);
    break;
  }
  return N;
}

uint64_t FlatFreeSpaceIndex::largestBlockBelow(Addr Limit) const {
  uint64_t Best = 0;
  for (size_t Li = 0; Li != Dir.size(); ++Li) {
    const LeafMeta &M = Dir[Li];
    if (M.FirstStart >= Limit)
      break;
    // Clipping never grows a span, so a leaf whose largest block does not
    // beat the incumbent is skipped whole.
    if (M.MaxSize <= Best)
      continue;
    const Leaf &L = *M.L;
    if (L.Ends[M.Count - 1] <= Limit) {
      // Wholly below the limit: clipping is the identity.
      Best = M.MaxSize;
      continue;
    }
    for (uint32_t I = 0; I != M.Count && L.Starts[I] < Limit; ++I) {
      uint64_t Span = std::min<Addr>(L.Ends[I], Limit) - L.Starts[I];
      Best = std::max(Best, Span);
    }
  }
  return Best;
}
