//===- testsupport/ReferenceFreeSpaceIndex.cpp - Oracle free index -------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// The pre-rewrite FreeSpaceIndex, verbatim (minus profiler hooks), as a
// testing oracle. Do not optimize this file: its value is being the
// trusted, unchanged original.
//
//===----------------------------------------------------------------------===//

#include "testsupport/ReferenceFreeSpaceIndex.h"

#include "support/MathUtils.h"

#include <algorithm>
#include <cassert>

using namespace pcb;

ReferenceFreeSpaceIndex::ReferenceFreeSpaceIndex() {
  addBlock(0, AddrLimit);
}

unsigned ReferenceFreeSpaceIndex::classOf(uint64_t Size) {
  assert(Size != 0 && "zero-size block");
  unsigned K = log2Floor(Size);
  return K < NumClasses ? K : NumClasses - 1;
}

void ReferenceFreeSpaceIndex::addBlock(Addr Start, Addr End) {
  assert(Start < End && "empty free block");
  ByAddr[Start] = End;
  BySize.emplace(End - Start, Start);
  Buckets[classOf(End - Start)].insert(Start);
}

void ReferenceFreeSpaceIndex::eraseBlock(std::map<Addr, Addr>::iterator It) {
  uint64_t Size = It->second - It->first;
  [[maybe_unused]] size_t Erased = BySize.erase({Size, It->first});
  assert(Erased == 1 && "free block missing from size index");
  Buckets[classOf(Size)].erase(It->first);
  ByAddr.erase(It);
}

void ReferenceFreeSpaceIndex::release(Addr Start, uint64_t Size) {
  assert(Size != 0 && "releasing zero words");
  Addr End = Start + Size;

  // Find a predecessor to coalesce with.
  auto It = ByAddr.lower_bound(Start);
  // A free block beginning inside [Start, End) means the range is being
  // double-released (a block beginning exactly at End is fine: it is the
  // coalescing successor).
  assert((It == ByAddr.end() || It->first >= End) &&
         "releasing a range that is partly free");
  if (It != ByAddr.begin()) {
    auto Prev = std::prev(It);
    assert(Prev->second <= Start && "releasing a range that is partly free");
    if (Prev->second == Start) {
      Start = Prev->first;
      eraseBlock(Prev);
    }
  }
  // Find a successor to coalesce with.
  It = ByAddr.find(End);
  if (It != ByAddr.end()) {
    End = It->second;
    eraseBlock(It);
  }
  addBlock(Start, End);
}

void ReferenceFreeSpaceIndex::reserve(Addr Start, uint64_t Size) {
  assert(Size != 0 && "reserving zero words");
  Addr End = Start + Size;
  auto It = ByAddr.upper_bound(Start);
  assert(It != ByAddr.begin() && "reserve target is not free");
  --It;
  Addr BlockStart = It->first;
  Addr BlockEnd = It->second;
  assert(BlockStart <= Start && End <= BlockEnd &&
         "reserve target is not entirely free");
  eraseBlock(It);
  if (BlockStart < Start)
    addBlock(BlockStart, Start);
  if (End < BlockEnd)
    addBlock(End, BlockEnd);
}

bool ReferenceFreeSpaceIndex::isFree(Addr Start, uint64_t Size) const {
  assert(Size != 0 && "querying zero words");
  auto It = ByAddr.upper_bound(Start);
  if (It == ByAddr.begin())
    return false;
  --It;
  return It->first <= Start && Start + Size <= It->second;
}

Addr ReferenceFreeSpaceIndex::firstFit(uint64_t Size) const {
  return firstFitFrom(0, Size);
}

Addr ReferenceFreeSpaceIndex::firstFitFrom(Addr From, uint64_t Size) const {
  assert(Size != 0 && "zero-size fit query");
  // A block containing From may serve the request from From onward.
  if (From != 0) {
    auto It = ByAddr.upper_bound(From);
    if (It != ByAddr.begin()) {
      auto Prev = std::prev(It);
      if (Prev->second > From && Prev->second - From >= Size)
        return From;
    }
  }
  // Every block in a class above classOf(Size) fits; blocks in the same
  // class fit iff their exact size does. Take the lowest qualifying start
  // across classes, resolving the boundary class last so its scan can be
  // cut off at the best address found so far.
  unsigned MinClass = classOf(Size);
  Addr Best = InvalidAddr;
  for (unsigned K = MinClass + 1; K < NumClasses; ++K) {
    auto It = Buckets[K].lower_bound(From);
    if (It != Buckets[K].end() && *It < Best)
      Best = *It;
  }
  for (auto It = Buckets[MinClass].lower_bound(From);
       It != Buckets[MinClass].end() && *It < Best; ++It) {
    // Blocks here have size in [2^MinClass, 2^MinClass+1); when Size is
    // an exact power of two (the adversarial workloads) the first block
    // always fits and this loop exits immediately.
    auto BIt = ByAddr.find(*It);
    assert(BIt != ByAddr.end() && "bucket entry missing from map");
    if (BIt->second - BIt->first >= Size) {
      Best = *It;
      break;
    }
  }
  assert(Best != InvalidAddr && "infinite tail should always fit");
  return Best;
}

Addr ReferenceFreeSpaceIndex::bestFit(uint64_t Size) const {
  assert(Size != 0 && "zero-size fit query");
  // The set orders by (size, start): the first entry at or above
  // (Size, 0) is the tightest block, lowest address first.
  auto It = BySize.lower_bound({Size, 0});
  assert(It != BySize.end() && "infinite tail should always fit");
  return It->second;
}

Addr ReferenceFreeSpaceIndex::firstFitAligned(uint64_t Size,
                                              uint64_t Align) const {
  assert(Size != 0 && "zero-size fit query");
  assert(isPowerOfTwo(Align) && "alignment must be a power of two");
  // A block of size >= Size + Align - 1 always admits an aligned
  // placement; smaller qualifying blocks are found by probing classes
  // that could fit Size at all.
  unsigned MinClass = classOf(Size);
  Addr Best = InvalidAddr;
  for (unsigned K = MinClass; K != NumClasses; ++K) {
    for (auto It = Buckets[K].begin(); It != Buckets[K].end(); ++It) {
      if (*It >= Best)
        break;
      auto BIt = ByAddr.find(*It);
      assert(BIt != ByAddr.end() && "bucket entry missing from map");
      Addr Aligned = alignUp(BIt->first, Align);
      if (Aligned < BIt->second && BIt->second - Aligned >= Size) {
        Best = Aligned;
        break;
      }
    }
  }
  assert(Best != InvalidAddr && "infinite tail should always fit");
  return Best;
}

Addr ReferenceFreeSpaceIndex::firstFitBelow(uint64_t Size, Addr Limit) const {
  assert(Size != 0 && "zero-size fit query");
  // Blocks are address-ordered, so if the overall first fit does not end
  // below the limit, no later block can either.
  Addr A = firstFit(Size);
  return A + Size <= Limit ? A : InvalidAddr;
}

Addr ReferenceFreeSpaceIndex::worstFitBelow(uint64_t Size, Addr Limit) const {
  assert(Size != 0 && "zero-size fit query");
  Addr Best = InvalidAddr;
  uint64_t BestSpan = 0;
  for (auto It = ByAddr.begin(); It != ByAddr.end() && It->first < Limit;
       ++It) {
    uint64_t Span = std::min<Addr>(It->second, Limit) - It->first;
    if (Span >= Size && Span > BestSpan) {
      BestSpan = Span;
      Best = It->first;
    }
  }
  return Best;
}

uint64_t ReferenceFreeSpaceIndex::freeWordsIn(Addr Start, Addr End) const {
  assert(Start < End && "empty query range");
  uint64_t Free = 0;
  auto It = ByAddr.upper_bound(Start);
  if (It != ByAddr.begin()) {
    auto Prev = std::prev(It);
    if (Prev->second > Start)
      Free += std::min(Prev->second, End) - Start;
  }
  for (; It != ByAddr.end() && It->first < End; ++It)
    Free += std::min(It->second, End) - It->first;
  return Free;
}

uint64_t ReferenceFreeSpaceIndex::freeWordsBelow(Addr Limit) const {
  return Limit == 0 ? 0 : freeWordsIn(0, Limit);
}

size_t ReferenceFreeSpaceIndex::numBlocksBelow(Addr Limit) const {
  size_t AtOrAbove = 0;
  for (auto It = ByAddr.lower_bound(Limit); It != ByAddr.end(); ++It)
    ++AtOrAbove;
  return ByAddr.size() - AtOrAbove;
}

uint64_t ReferenceFreeSpaceIndex::largestBlockBelow(Addr Limit) const {
  uint64_t Best = 0;
  for (auto It = BySize.rbegin(); It != BySize.rend(); ++It) {
    const auto &[Size, Start] = *It;
    // A clipped span never exceeds the raw size, and sizes only shrink
    // from here on.
    if (Size <= Best)
      break;
    if (Start >= Limit)
      continue;
    Addr End = Start + Size;
    Best = std::max(Best, uint64_t(std::min<Addr>(End, Limit) - Start));
  }
  return Best;
}
