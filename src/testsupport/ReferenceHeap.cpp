//===- testsupport/ReferenceHeap.cpp - Oracle heap model -----------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "testsupport/ReferenceHeap.h"


#include <algorithm>
#include <cassert>
#include <string>

using namespace pcb;

ObjectId ReferenceHeap::place(Addr Address, uint64_t Size) {
  assert(Size != 0 && "zero-size object");
  assert(Address + Size <= AddrLimit && "placement beyond the address space");
  Free.reserve(Address, Size);

  ObjectId Id = ObjectId(Objects.size());
  Objects.push_back(Object{Address, Size, ObjectState::Live});
  LiveByAddr[Address] = Id;

  Stats.TotalAllocatedWords += Size;
  Stats.LiveWords += Size;
  Stats.PeakLiveWords = std::max(Stats.PeakLiveWords, Stats.LiveWords);
  Stats.HighWaterMark = std::max(Stats.HighWaterMark, Address + Size);
  ++Stats.NumAllocations;
  if (OnEvent)
    OnEvent(HeapEvent::alloc(Id, Address, Size));
  return Id;
}

void ReferenceHeap::free(ObjectId Id) {
  assert(isLive(Id) && "freeing a dead or unknown object");
  Object &O = Objects[Id];
  Free.release(O.Address, O.Size);
  LiveByAddr.erase(O.Address);
  O.State = ObjectState::Freed;
  Stats.LiveWords -= O.Size;
  ++Stats.NumFrees;
  if (OnEvent)
    OnEvent(HeapEvent::release(Id, O.Address, O.Size));
}

void ReferenceHeap::move(ObjectId Id, Addr NewAddress) {
  assert(isLive(Id) && "moving a dead or unknown object");
  Object &O = Objects[Id];
  assert(NewAddress + O.Size <= AddrLimit && "move beyond the address space");
  // Vacate first so that sliding moves (target overlapping the source, as
  // in memmove) are allowed; reserve still asserts the target is free of
  // every *other* object.
  Free.release(O.Address, O.Size);
  Free.reserve(NewAddress, O.Size);
  LiveByAddr.erase(O.Address);
  LiveByAddr[NewAddress] = Id;
  Addr OldAddress = O.Address;
  O.Address = NewAddress;
  Stats.MovedWords += O.Size;
  Stats.HighWaterMark = std::max(Stats.HighWaterMark, NewAddress + O.Size);
  ++Stats.NumMoves;
  if (OnEvent)
    OnEvent(HeapEvent::move(Id, OldAddress, NewAddress, O.Size));
}

uint64_t ReferenceHeap::usedWordsIn(Addr Start, uint64_t Size) const {
  assert(Size != 0 && "empty query range");
  return Size - Free.freeWordsIn(Start, Start + Size);
}

bool ReferenceHeap::checkConsistency(std::string *Why) const {
  auto Fail = [&](const std::string &Reason) {
    if (Why)
      *Why = Reason;
    return false;
  };
  uint64_t LiveWords = 0;
  uint64_t LiveCount = 0;
  Addr PrevEnd = 0;
  uint64_t MaxEnd = 0;
  for (const auto &[Address, Id] : LiveByAddr) {
    if (Id >= Objects.size())
      return Fail("address index names an unknown object id " +
                  std::to_string(Id));
    const Object &O = Objects[Id];
    if (!O.isLive() || O.Address != Address)
      return Fail("address index disagrees with object table at id " +
                  std::to_string(Id));
    if (Address < PrevEnd)
      return Fail("object " + std::to_string(Id) +
                  " overlaps its predecessor at address " +
                  std::to_string(Address));
    // Every word of the object must be absent from the free index.
    if (Free.freeWordsIn(Address, O.end()) != 0)
      return Fail("object " + std::to_string(Id) +
                  " overlaps the free index");
    PrevEnd = O.end();
    MaxEnd = std::max(MaxEnd, uint64_t(O.end()));
    LiveWords += O.Size;
    ++LiveCount;
  }
  // Every live object appears in the index; no dead object does.
  uint64_t TableLive = 0;
  for (const Object &O : Objects)
    TableLive += O.isLive();
  if (TableLive != LiveCount)
    return Fail("object table has " + std::to_string(TableLive) +
                " live objects but the address index has " +
                std::to_string(LiveCount));
  // The free index is the exact complement up to the high-water mark.
  if (Stats.HighWaterMark != 0 &&
      Free.freeWordsIn(0, Stats.HighWaterMark) !=
          Stats.HighWaterMark - LiveWords)
    return Fail("free index is not the complement of the live objects "
                "below the high-water mark");
  if (LiveWords != Stats.LiveWords)
    return Fail("LiveWords statistic " + std::to_string(Stats.LiveWords) +
                " does not match recount " + std::to_string(LiveWords));
  if (MaxEnd > Stats.HighWaterMark)
    return Fail("an object ends above the recorded high-water mark");
  return true;
}

std::vector<ObjectId> ReferenceHeap::liveObjects() const {
  std::vector<ObjectId> Ids;
  Ids.reserve(LiveByAddr.size());
  for (const auto &[Address, Id] : LiveByAddr) {
    (void)Address;
    Ids.push_back(Id);
  }
  return Ids;
}

uint64_t ReferenceHeap::occupancyMask(unsigned Count) const {
  assert(Count <= 64 && "mask covers at most 64 words");
  uint64_t Occ = 0;
  for (const auto &[Address, Id] : LiveByAddr) {
    if (Address >= Count)
      break;
    uint64_t End = std::min<uint64_t>(Objects[Id].end(), Count);
    for (uint64_t A = Address; A < End; ++A)
      Occ |= uint64_t(1) << A;
  }
  return Occ;
}

uint64_t ReferenceHeap::objectStartMask(unsigned Count) const {
  assert(Count <= 64 && "mask covers at most 64 words");
  uint64_t Starts = 0;
  for (const auto &[Address, Id] : LiveByAddr) {
    (void)Id;
    if (Address >= Count)
      break;
    Starts |= uint64_t(1) << Address;
  }
  return Starts;
}

std::vector<ObjectId> ReferenceHeap::liveObjectsIn(Addr Start, uint64_t Size) const {
  Addr End = Start + Size;
  std::vector<ObjectId> Ids;
  auto It = LiveByAddr.upper_bound(Start);
  // An object starting before the range may still reach into it.
  if (It != LiveByAddr.begin()) {
    auto Prev = std::prev(It);
    if (Objects[Prev->second].end() > Start)
      Ids.push_back(Prev->second);
  }
  for (; It != LiveByAddr.end() && It->first < End; ++It)
    Ids.push_back(It->second);
  return Ids;
}
