//===- testsupport/ReferenceFreeSpaceIndex.h - Oracle free index -*- C++ -*-==//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The original node-based free-space index, kept verbatim as a testing
/// oracle for the flat FreeSpaceIndex that replaced it on the hot path.
/// Three synchronized structures keep every query logarithmic in the
/// number of free blocks: an address-ordered map, a size-ordered set
/// (best fit), and per-size-class address sets (first fit). Slower but
/// obviously correct; the equivalence property test and the differential
/// fuzzer's parity checkers drive both indexes through identical
/// operation streams and compare every query result.
///
/// Deliberately not linked into the heap/mm/bench layers — only tests and
/// the fuzzing harness may depend on it. Profiler instrumentation is
/// stripped (the live index owns the fsi.* sections; the oracle must not
/// double-count them when both run side by side).
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_TESTSUPPORT_REFERENCEFREESPACEINDEX_H
#define PCBOUND_TESTSUPPORT_REFERENCEFREESPACEINDEX_H

#include "heap/HeapTypes.h"

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <utility>

namespace pcb {

/// Address- and size-indexed free blocks with placement queries; the
/// pre-rewrite implementation, preserved as an oracle.
class ReferenceFreeSpaceIndex {
public:
  /// Initializes with the whole address space [0, AddrLimit) free.
  ReferenceFreeSpaceIndex();

  /// Marks [Start, Start + Size) free, coalescing neighbours. The range
  /// must currently be absent from the index (i.e. used).
  void release(Addr Start, uint64_t Size);

  /// Marks [Start, Start + Size) used. The range must be fully free.
  void reserve(Addr Start, uint64_t Size);

  /// True if [Start, Start + Size) is entirely free.
  bool isFree(Addr Start, uint64_t Size) const;

  /// Lowest address where \p Size words fit.
  Addr firstFit(uint64_t Size) const;

  /// Lowest address >= \p From where \p Size words fit (a block
  /// containing \p From counts from \p From onward).
  Addr firstFitFrom(Addr From, uint64_t Size) const;

  /// Address of the smallest free block that fits \p Size (ties broken by
  /// lowest address).
  Addr bestFit(uint64_t Size) const;

  /// Lowest \p Align-aligned address where \p Size words fit.
  /// \p Align must be a power of two.
  Addr firstFitAligned(uint64_t Size, uint64_t Align) const;

  /// Lowest address where \p Size words fit entirely below \p Limit, or
  /// InvalidAddr when no such placement exists.
  Addr firstFitBelow(uint64_t Size, Addr Limit) const;

  /// Start of the free block with the largest span clipped to [0, Limit)
  /// among blocks starting below \p Limit whose clipped span is at least
  /// \p Size (ties broken by lowest address), or InvalidAddr. A plain
  /// address-order scan — the obviously-correct worst fit.
  Addr worstFitBelow(uint64_t Size, Addr Limit) const;

  /// Number of free blocks (including the infinite tail).
  size_t numBlocks() const { return ByAddr.size(); }

  /// Free words below \p Limit.
  uint64_t freeWordsBelow(Addr Limit) const;

  /// Free words within [Start, End).
  uint64_t freeWordsIn(Addr Start, Addr End) const;

  /// Number of free blocks that begin below \p Limit.
  size_t numBlocksBelow(Addr Limit) const;

  /// Largest free run clipped to [0, Limit): the maximum over blocks
  /// starting below \p Limit of min(end, Limit) - start.
  uint64_t largestBlockBelow(Addr Limit) const;

  /// Iteration over (start, end) free blocks in address order.
  using const_iterator = std::map<Addr, Addr>::const_iterator;
  const_iterator begin() const { return ByAddr.begin(); }
  const_iterator end() const { return ByAddr.end(); }

private:
  void eraseBlock(std::map<Addr, Addr>::iterator It);
  void addBlock(Addr Start, Addr End);

  /// Size class of a block: floor(log2(size)). Class K holds sizes in
  /// [2^K, 2^(K+1)).
  static unsigned classOf(uint64_t Size);

  static constexpr unsigned NumClasses = 61;

  std::map<Addr, Addr> ByAddr;              // start -> end
  std::set<std::pair<uint64_t, Addr>> BySize; // (size, start); best fit
  std::set<Addr> Buckets[NumClasses];       // per-class starts (first fit)
};

} // namespace pcb

#endif // PCBOUND_TESTSUPPORT_REFERENCEFREESPACEINDEX_H
