# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_bounds "/root/repo/build/tools/pcbound" "bounds" "c=100")
set_tests_properties(cli_bounds PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_plan "/root/repo/build/tools/pcbound" "plan" "target=2.0")
set_tests_properties(cli_plan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_policies "/root/repo/build/tools/pcbound" "policies")
set_tests_properties(cli_policies PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/pcbound" "simulate" "program=robson" "policy=first-fit" "logm=11" "logn=5")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/pcbound")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
