# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(support_test "/root/repo/build/tests/support_test")
set_tests_properties(support_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bounds_test "/root/repo/build/tests/bounds_test")
set_tests_properties(bounds_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(heap_test "/root/repo/build/tests/heap_test")
set_tests_properties(heap_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mm_test "/root/repo/build/tests/mm_test")
set_tests_properties(mm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(adversary_test "/root/repo/build/tests/adversary_test")
set_tests_properties(adversary_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(driver_test "/root/repo/build/tests/driver_test")
set_tests_properties(driver_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(audit_test "/root/repo/build/tests/audit_test")
set_tests_properties(audit_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(failure_test "/root/repo/build/tests/failure_test")
set_tests_properties(failure_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
