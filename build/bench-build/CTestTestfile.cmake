# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_fig1_smoke "/root/repo/build/bench/bench_fig1" "cmax=16")
set_tests_properties(bench_fig1_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;18;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig2_smoke "/root/repo/build/bench/bench_fig2" "lognmax=14")
set_tests_properties(bench_fig2_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;19;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig3_smoke "/root/repo/build/bench/bench_fig3" "cmax=16")
set_tests_properties(bench_fig3_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;20;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_robson_smoke "/root/repo/build/bench/bench_robson" "logm=11" "lognmax=5")
set_tests_properties(bench_robson_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;21;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_pf_sim_smoke "/root/repo/build/bench/bench_pf_sim" "logm=12" "logn=7" "cs=10,50")
set_tests_properties(bench_pf_sim_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;22;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_pf_n_sweep_smoke "/root/repo/build/bench/bench_pf_n_sweep" "lognmin=6" "lognmax=7" "ratio=32")
set_tests_properties(bench_pf_n_sweep_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_upper_smoke "/root/repo/build/bench/bench_upper" "logm=12" "logn=6")
set_tests_properties(bench_upper_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_ablation_smoke "/root/repo/build/bench/bench_ablation" "logm=12" "logn=7" "cs=20")
set_tests_properties(bench_ablation_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_manager_tuning_smoke "/root/repo/build/bench/bench_manager_tuning" "logm=12" "logn=6" "thresholds=0.25")
set_tests_properties(bench_manager_tuning_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;29;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_substrate_smoke "/root/repo/build/bench/bench_substrate" "--benchmark_min_time=0.01")
set_tests_properties(bench_substrate_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
