# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-san/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_bounds "/root/repo/build-san/tools/pcbound" "bounds" "c=100")
set_tests_properties(cli_bounds PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_plan "/root/repo/build-san/tools/pcbound" "plan" "target=2.0")
set_tests_properties(cli_plan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_policies "/root/repo/build-san/tools/pcbound" "policies")
set_tests_properties(cli_policies PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build-san/tools/pcbound" "simulate" "program=robson" "policy=first-fit" "logm=11" "logn=5")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_profile "/root/repo/build-san/tools/pcbound" "profile" "program=pf" "policy=evacuating" "logm=11" "logn=5" "stride=4" "timeline=/root/repo/build-san/tools/profile-timeline.csv")
set_tests_properties(cli_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep_timeline "/root/repo/build-san/tools/pcbound" "sweep" "program=robson" "policies=first-fit" "cs=50" "logm=11" "logn=5" "--threads=1" "progress=0" "timeline=/root/repo/build-san/tools/sweep-timeline.csv")
set_tests_properties(cli_sweep_timeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep "/root/repo/build-san/tools/pcbound" "sweep" "program=robson" "policies=first-fit,best-fit" "cs=10,50" "logm=11" "logn=5" "--threads=2")
set_tests_properties(cli_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_fuzz "/root/repo/build-san/tools/pcbound" "fuzz" "seed=7" "iterations=8" "ops=128" "logm=10" "maxlog=6" "--threads=2" "progress=0")
set_tests_properties(cli_fuzz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_replay_trace_detects_golden_corruption "/root/repo/build-san/tools/pcbound" "replay-trace" "trace=/root/repo/tests/golden/planted-free-corruption.trace")
set_tests_properties(cli_replay_trace_detects_golden_corruption PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build-san/tools/pcbound")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
