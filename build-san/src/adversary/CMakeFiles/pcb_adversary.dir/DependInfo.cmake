
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adversary/CohenPetrankProgram.cpp" "src/adversary/CMakeFiles/pcb_adversary.dir/CohenPetrankProgram.cpp.o" "gcc" "src/adversary/CMakeFiles/pcb_adversary.dir/CohenPetrankProgram.cpp.o.d"
  "/root/repo/src/adversary/PatternWorkloads.cpp" "src/adversary/CMakeFiles/pcb_adversary.dir/PatternWorkloads.cpp.o" "gcc" "src/adversary/CMakeFiles/pcb_adversary.dir/PatternWorkloads.cpp.o.d"
  "/root/repo/src/adversary/Program.cpp" "src/adversary/CMakeFiles/pcb_adversary.dir/Program.cpp.o" "gcc" "src/adversary/CMakeFiles/pcb_adversary.dir/Program.cpp.o.d"
  "/root/repo/src/adversary/ProgramFactory.cpp" "src/adversary/CMakeFiles/pcb_adversary.dir/ProgramFactory.cpp.o" "gcc" "src/adversary/CMakeFiles/pcb_adversary.dir/ProgramFactory.cpp.o.d"
  "/root/repo/src/adversary/RobsonCore.cpp" "src/adversary/CMakeFiles/pcb_adversary.dir/RobsonCore.cpp.o" "gcc" "src/adversary/CMakeFiles/pcb_adversary.dir/RobsonCore.cpp.o.d"
  "/root/repo/src/adversary/RobsonProgram.cpp" "src/adversary/CMakeFiles/pcb_adversary.dir/RobsonProgram.cpp.o" "gcc" "src/adversary/CMakeFiles/pcb_adversary.dir/RobsonProgram.cpp.o.d"
  "/root/repo/src/adversary/SyntheticWorkloads.cpp" "src/adversary/CMakeFiles/pcb_adversary.dir/SyntheticWorkloads.cpp.o" "gcc" "src/adversary/CMakeFiles/pcb_adversary.dir/SyntheticWorkloads.cpp.o.d"
  "/root/repo/src/adversary/WorkloadSpec.cpp" "src/adversary/CMakeFiles/pcb_adversary.dir/WorkloadSpec.cpp.o" "gcc" "src/adversary/CMakeFiles/pcb_adversary.dir/WorkloadSpec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-san/src/bounds/CMakeFiles/pcb_bounds.dir/DependInfo.cmake"
  "/root/repo/build-san/src/heap/CMakeFiles/pcb_heap.dir/DependInfo.cmake"
  "/root/repo/build-san/src/support/CMakeFiles/pcb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
