
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mm/BuddyManager.cpp" "src/mm/CMakeFiles/pcb_mm.dir/BuddyManager.cpp.o" "gcc" "src/mm/CMakeFiles/pcb_mm.dir/BuddyManager.cpp.o.d"
  "/root/repo/src/mm/BumpCompactor.cpp" "src/mm/CMakeFiles/pcb_mm.dir/BumpCompactor.cpp.o" "gcc" "src/mm/CMakeFiles/pcb_mm.dir/BumpCompactor.cpp.o.d"
  "/root/repo/src/mm/EvacuatingCompactor.cpp" "src/mm/CMakeFiles/pcb_mm.dir/EvacuatingCompactor.cpp.o" "gcc" "src/mm/CMakeFiles/pcb_mm.dir/EvacuatingCompactor.cpp.o.d"
  "/root/repo/src/mm/HybridManager.cpp" "src/mm/CMakeFiles/pcb_mm.dir/HybridManager.cpp.o" "gcc" "src/mm/CMakeFiles/pcb_mm.dir/HybridManager.cpp.o.d"
  "/root/repo/src/mm/ManagerFactory.cpp" "src/mm/CMakeFiles/pcb_mm.dir/ManagerFactory.cpp.o" "gcc" "src/mm/CMakeFiles/pcb_mm.dir/ManagerFactory.cpp.o.d"
  "/root/repo/src/mm/MemoryManager.cpp" "src/mm/CMakeFiles/pcb_mm.dir/MemoryManager.cpp.o" "gcc" "src/mm/CMakeFiles/pcb_mm.dir/MemoryManager.cpp.o.d"
  "/root/repo/src/mm/PagedSpaceManager.cpp" "src/mm/CMakeFiles/pcb_mm.dir/PagedSpaceManager.cpp.o" "gcc" "src/mm/CMakeFiles/pcb_mm.dir/PagedSpaceManager.cpp.o.d"
  "/root/repo/src/mm/SegregatedFitManager.cpp" "src/mm/CMakeFiles/pcb_mm.dir/SegregatedFitManager.cpp.o" "gcc" "src/mm/CMakeFiles/pcb_mm.dir/SegregatedFitManager.cpp.o.d"
  "/root/repo/src/mm/SlidingCompactor.cpp" "src/mm/CMakeFiles/pcb_mm.dir/SlidingCompactor.cpp.o" "gcc" "src/mm/CMakeFiles/pcb_mm.dir/SlidingCompactor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-san/src/heap/CMakeFiles/pcb_heap.dir/DependInfo.cmake"
  "/root/repo/build-san/src/support/CMakeFiles/pcb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
