
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fuzz/DifferentialHarness.cpp" "src/fuzz/CMakeFiles/pcb_fuzz.dir/DifferentialHarness.cpp.o" "gcc" "src/fuzz/CMakeFiles/pcb_fuzz.dir/DifferentialHarness.cpp.o.d"
  "/root/repo/src/fuzz/IndexParityChecker.cpp" "src/fuzz/CMakeFiles/pcb_fuzz.dir/IndexParityChecker.cpp.o" "gcc" "src/fuzz/CMakeFiles/pcb_fuzz.dir/IndexParityChecker.cpp.o.d"
  "/root/repo/src/fuzz/InvariantOracle.cpp" "src/fuzz/CMakeFiles/pcb_fuzz.dir/InvariantOracle.cpp.o" "gcc" "src/fuzz/CMakeFiles/pcb_fuzz.dir/InvariantOracle.cpp.o.d"
  "/root/repo/src/fuzz/WorkloadFuzzer.cpp" "src/fuzz/CMakeFiles/pcb_fuzz.dir/WorkloadFuzzer.cpp.o" "gcc" "src/fuzz/CMakeFiles/pcb_fuzz.dir/WorkloadFuzzer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-san/src/driver/CMakeFiles/pcb_driver.dir/DependInfo.cmake"
  "/root/repo/build-san/src/adversary/CMakeFiles/pcb_adversary.dir/DependInfo.cmake"
  "/root/repo/build-san/src/mm/CMakeFiles/pcb_mm.dir/DependInfo.cmake"
  "/root/repo/build-san/src/heap/CMakeFiles/pcb_heap.dir/DependInfo.cmake"
  "/root/repo/build-san/src/testsupport/CMakeFiles/pcb_testsupport.dir/DependInfo.cmake"
  "/root/repo/build-san/src/support/CMakeFiles/pcb_support.dir/DependInfo.cmake"
  "/root/repo/build-san/src/bounds/CMakeFiles/pcb_bounds.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
