
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runner/ExperimentGrid.cpp" "src/runner/CMakeFiles/pcb_runner.dir/ExperimentGrid.cpp.o" "gcc" "src/runner/CMakeFiles/pcb_runner.dir/ExperimentGrid.cpp.o.d"
  "/root/repo/src/runner/ResultSink.cpp" "src/runner/CMakeFiles/pcb_runner.dir/ResultSink.cpp.o" "gcc" "src/runner/CMakeFiles/pcb_runner.dir/ResultSink.cpp.o.d"
  "/root/repo/src/runner/Runner.cpp" "src/runner/CMakeFiles/pcb_runner.dir/Runner.cpp.o" "gcc" "src/runner/CMakeFiles/pcb_runner.dir/Runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-san/src/support/CMakeFiles/pcb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
