
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bounds/BenderskyPetrankBounds.cpp" "src/bounds/CMakeFiles/pcb_bounds.dir/BenderskyPetrankBounds.cpp.o" "gcc" "src/bounds/CMakeFiles/pcb_bounds.dir/BenderskyPetrankBounds.cpp.o.d"
  "/root/repo/src/bounds/BoundSweep.cpp" "src/bounds/CMakeFiles/pcb_bounds.dir/BoundSweep.cpp.o" "gcc" "src/bounds/CMakeFiles/pcb_bounds.dir/BoundSweep.cpp.o.d"
  "/root/repo/src/bounds/CohenPetrankBounds.cpp" "src/bounds/CMakeFiles/pcb_bounds.dir/CohenPetrankBounds.cpp.o" "gcc" "src/bounds/CMakeFiles/pcb_bounds.dir/CohenPetrankBounds.cpp.o.d"
  "/root/repo/src/bounds/Planning.cpp" "src/bounds/CMakeFiles/pcb_bounds.dir/Planning.cpp.o" "gcc" "src/bounds/CMakeFiles/pcb_bounds.dir/Planning.cpp.o.d"
  "/root/repo/src/bounds/RobsonBounds.cpp" "src/bounds/CMakeFiles/pcb_bounds.dir/RobsonBounds.cpp.o" "gcc" "src/bounds/CMakeFiles/pcb_bounds.dir/RobsonBounds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-san/src/support/CMakeFiles/pcb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
