# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-san/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("runner")
subdirs("heap")
subdirs("bounds")
subdirs("mm")
subdirs("adversary")
subdirs("driver")
subdirs("obs")
subdirs("testsupport")
subdirs("fuzz")
