
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/failure_test.cpp" "tests/CMakeFiles/failure_test.dir/failure_test.cpp.o" "gcc" "tests/CMakeFiles/failure_test.dir/failure_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-san/src/obs/CMakeFiles/pcb_obs.dir/DependInfo.cmake"
  "/root/repo/build-san/src/fuzz/CMakeFiles/pcb_fuzz.dir/DependInfo.cmake"
  "/root/repo/build-san/src/testsupport/CMakeFiles/pcb_testsupport.dir/DependInfo.cmake"
  "/root/repo/build-san/src/runner/CMakeFiles/pcb_runner.dir/DependInfo.cmake"
  "/root/repo/build-san/src/driver/CMakeFiles/pcb_driver.dir/DependInfo.cmake"
  "/root/repo/build-san/src/adversary/CMakeFiles/pcb_adversary.dir/DependInfo.cmake"
  "/root/repo/build-san/src/mm/CMakeFiles/pcb_mm.dir/DependInfo.cmake"
  "/root/repo/build-san/src/bounds/CMakeFiles/pcb_bounds.dir/DependInfo.cmake"
  "/root/repo/build-san/src/heap/CMakeFiles/pcb_heap.dir/DependInfo.cmake"
  "/root/repo/build-san/src/support/CMakeFiles/pcb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
