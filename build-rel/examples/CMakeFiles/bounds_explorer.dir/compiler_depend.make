# Empty compiler generated dependencies file for bounds_explorer.
# This may be replaced when dependencies are built.
