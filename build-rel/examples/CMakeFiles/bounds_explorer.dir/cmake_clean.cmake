file(REMOVE_RECURSE
  "CMakeFiles/bounds_explorer.dir/bounds_explorer.cpp.o"
  "CMakeFiles/bounds_explorer.dir/bounds_explorer.cpp.o.d"
  "bounds_explorer"
  "bounds_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounds_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
