# Empty dependencies file for compaction_tradeoff.
# This may be replaced when dependencies are built.
