file(REMOVE_RECURSE
  "CMakeFiles/compaction_tradeoff.dir/compaction_tradeoff.cpp.o"
  "CMakeFiles/compaction_tradeoff.dir/compaction_tradeoff.cpp.o.d"
  "compaction_tradeoff"
  "compaction_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compaction_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
