# Empty compiler generated dependencies file for fragmentation_attack.
# This may be replaced when dependencies are built.
