file(REMOVE_RECURSE
  "CMakeFiles/fragmentation_attack.dir/fragmentation_attack.cpp.o"
  "CMakeFiles/fragmentation_attack.dir/fragmentation_attack.cpp.o.d"
  "fragmentation_attack"
  "fragmentation_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fragmentation_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
