# Empty compiler generated dependencies file for potential_function.
# This may be replaced when dependencies are built.
