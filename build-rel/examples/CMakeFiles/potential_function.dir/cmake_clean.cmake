file(REMOVE_RECURSE
  "CMakeFiles/potential_function.dir/potential_function.cpp.o"
  "CMakeFiles/potential_function.dir/potential_function.cpp.o.d"
  "potential_function"
  "potential_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/potential_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
