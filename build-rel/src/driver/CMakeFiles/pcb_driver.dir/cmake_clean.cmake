file(REMOVE_RECURSE
  "CMakeFiles/pcb_driver.dir/Auditors.cpp.o"
  "CMakeFiles/pcb_driver.dir/Auditors.cpp.o.d"
  "CMakeFiles/pcb_driver.dir/EventLog.cpp.o"
  "CMakeFiles/pcb_driver.dir/EventLog.cpp.o.d"
  "CMakeFiles/pcb_driver.dir/Execution.cpp.o"
  "CMakeFiles/pcb_driver.dir/Execution.cpp.o.d"
  "CMakeFiles/pcb_driver.dir/TraceIO.cpp.o"
  "CMakeFiles/pcb_driver.dir/TraceIO.cpp.o.d"
  "libpcb_driver.a"
  "libpcb_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcb_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
