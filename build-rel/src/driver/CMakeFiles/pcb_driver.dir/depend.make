# Empty dependencies file for pcb_driver.
# This may be replaced when dependencies are built.
