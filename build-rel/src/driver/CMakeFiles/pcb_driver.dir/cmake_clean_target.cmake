file(REMOVE_RECURSE
  "libpcb_driver.a"
)
