file(REMOVE_RECURSE
  "CMakeFiles/pcb_mm.dir/BuddyManager.cpp.o"
  "CMakeFiles/pcb_mm.dir/BuddyManager.cpp.o.d"
  "CMakeFiles/pcb_mm.dir/BumpCompactor.cpp.o"
  "CMakeFiles/pcb_mm.dir/BumpCompactor.cpp.o.d"
  "CMakeFiles/pcb_mm.dir/EvacuatingCompactor.cpp.o"
  "CMakeFiles/pcb_mm.dir/EvacuatingCompactor.cpp.o.d"
  "CMakeFiles/pcb_mm.dir/HybridManager.cpp.o"
  "CMakeFiles/pcb_mm.dir/HybridManager.cpp.o.d"
  "CMakeFiles/pcb_mm.dir/ManagerFactory.cpp.o"
  "CMakeFiles/pcb_mm.dir/ManagerFactory.cpp.o.d"
  "CMakeFiles/pcb_mm.dir/MemoryManager.cpp.o"
  "CMakeFiles/pcb_mm.dir/MemoryManager.cpp.o.d"
  "CMakeFiles/pcb_mm.dir/PagedSpaceManager.cpp.o"
  "CMakeFiles/pcb_mm.dir/PagedSpaceManager.cpp.o.d"
  "CMakeFiles/pcb_mm.dir/SegregatedFitManager.cpp.o"
  "CMakeFiles/pcb_mm.dir/SegregatedFitManager.cpp.o.d"
  "CMakeFiles/pcb_mm.dir/SlidingCompactor.cpp.o"
  "CMakeFiles/pcb_mm.dir/SlidingCompactor.cpp.o.d"
  "libpcb_mm.a"
  "libpcb_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcb_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
