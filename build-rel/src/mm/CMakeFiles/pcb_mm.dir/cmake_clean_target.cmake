file(REMOVE_RECURSE
  "libpcb_mm.a"
)
