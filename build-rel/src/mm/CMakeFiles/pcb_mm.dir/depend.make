# Empty dependencies file for pcb_mm.
# This may be replaced when dependencies are built.
