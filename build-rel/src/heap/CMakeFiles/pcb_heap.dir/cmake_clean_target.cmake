file(REMOVE_RECURSE
  "libpcb_heap.a"
)
