file(REMOVE_RECURSE
  "CMakeFiles/pcb_heap.dir/FreeSpaceIndex.cpp.o"
  "CMakeFiles/pcb_heap.dir/FreeSpaceIndex.cpp.o.d"
  "CMakeFiles/pcb_heap.dir/Heap.cpp.o"
  "CMakeFiles/pcb_heap.dir/Heap.cpp.o.d"
  "CMakeFiles/pcb_heap.dir/HeapImage.cpp.o"
  "CMakeFiles/pcb_heap.dir/HeapImage.cpp.o.d"
  "CMakeFiles/pcb_heap.dir/IntervalSet.cpp.o"
  "CMakeFiles/pcb_heap.dir/IntervalSet.cpp.o.d"
  "CMakeFiles/pcb_heap.dir/Metrics.cpp.o"
  "CMakeFiles/pcb_heap.dir/Metrics.cpp.o.d"
  "libpcb_heap.a"
  "libpcb_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcb_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
