# Empty dependencies file for pcb_heap.
# This may be replaced when dependencies are built.
