file(REMOVE_RECURSE
  "CMakeFiles/pcb_testsupport.dir/ReferenceFreeSpaceIndex.cpp.o"
  "CMakeFiles/pcb_testsupport.dir/ReferenceFreeSpaceIndex.cpp.o.d"
  "libpcb_testsupport.a"
  "libpcb_testsupport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcb_testsupport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
