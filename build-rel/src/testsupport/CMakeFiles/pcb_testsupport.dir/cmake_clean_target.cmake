file(REMOVE_RECURSE
  "libpcb_testsupport.a"
)
