# Empty compiler generated dependencies file for pcb_testsupport.
# This may be replaced when dependencies are built.
