# Empty dependencies file for pcb_fuzz.
# This may be replaced when dependencies are built.
