file(REMOVE_RECURSE
  "libpcb_fuzz.a"
)
