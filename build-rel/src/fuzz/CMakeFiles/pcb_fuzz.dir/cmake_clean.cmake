file(REMOVE_RECURSE
  "CMakeFiles/pcb_fuzz.dir/DifferentialHarness.cpp.o"
  "CMakeFiles/pcb_fuzz.dir/DifferentialHarness.cpp.o.d"
  "CMakeFiles/pcb_fuzz.dir/IndexParityChecker.cpp.o"
  "CMakeFiles/pcb_fuzz.dir/IndexParityChecker.cpp.o.d"
  "CMakeFiles/pcb_fuzz.dir/InvariantOracle.cpp.o"
  "CMakeFiles/pcb_fuzz.dir/InvariantOracle.cpp.o.d"
  "CMakeFiles/pcb_fuzz.dir/WorkloadFuzzer.cpp.o"
  "CMakeFiles/pcb_fuzz.dir/WorkloadFuzzer.cpp.o.d"
  "libpcb_fuzz.a"
  "libpcb_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcb_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
