# Empty dependencies file for pcb_support.
# This may be replaced when dependencies are built.
