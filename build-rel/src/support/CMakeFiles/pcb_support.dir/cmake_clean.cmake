file(REMOVE_RECURSE
  "CMakeFiles/pcb_support.dir/AsciiChart.cpp.o"
  "CMakeFiles/pcb_support.dir/AsciiChart.cpp.o.d"
  "CMakeFiles/pcb_support.dir/OptionParser.cpp.o"
  "CMakeFiles/pcb_support.dir/OptionParser.cpp.o.d"
  "CMakeFiles/pcb_support.dir/Random.cpp.o"
  "CMakeFiles/pcb_support.dir/Random.cpp.o.d"
  "CMakeFiles/pcb_support.dir/Table.cpp.o"
  "CMakeFiles/pcb_support.dir/Table.cpp.o.d"
  "libpcb_support.a"
  "libpcb_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcb_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
