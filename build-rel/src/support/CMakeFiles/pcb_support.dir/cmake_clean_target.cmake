file(REMOVE_RECURSE
  "libpcb_support.a"
)
