# Empty dependencies file for pcb_runner.
# This may be replaced when dependencies are built.
