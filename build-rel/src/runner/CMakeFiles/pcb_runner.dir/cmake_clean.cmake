file(REMOVE_RECURSE
  "CMakeFiles/pcb_runner.dir/ExperimentGrid.cpp.o"
  "CMakeFiles/pcb_runner.dir/ExperimentGrid.cpp.o.d"
  "CMakeFiles/pcb_runner.dir/ResultSink.cpp.o"
  "CMakeFiles/pcb_runner.dir/ResultSink.cpp.o.d"
  "CMakeFiles/pcb_runner.dir/Runner.cpp.o"
  "CMakeFiles/pcb_runner.dir/Runner.cpp.o.d"
  "libpcb_runner.a"
  "libpcb_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcb_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
