file(REMOVE_RECURSE
  "libpcb_runner.a"
)
