file(REMOVE_RECURSE
  "libpcb_obs.a"
)
