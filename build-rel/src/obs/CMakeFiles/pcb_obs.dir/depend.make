# Empty dependencies file for pcb_obs.
# This may be replaced when dependencies are built.
