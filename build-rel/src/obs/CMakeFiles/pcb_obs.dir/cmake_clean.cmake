file(REMOVE_RECURSE
  "CMakeFiles/pcb_obs.dir/Profiler.cpp.o"
  "CMakeFiles/pcb_obs.dir/Profiler.cpp.o.d"
  "CMakeFiles/pcb_obs.dir/Timeline.cpp.o"
  "CMakeFiles/pcb_obs.dir/Timeline.cpp.o.d"
  "CMakeFiles/pcb_obs.dir/TimelineSampler.cpp.o"
  "CMakeFiles/pcb_obs.dir/TimelineSampler.cpp.o.d"
  "libpcb_obs.a"
  "libpcb_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcb_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
