# Empty dependencies file for pcb_adversary.
# This may be replaced when dependencies are built.
