file(REMOVE_RECURSE
  "CMakeFiles/pcb_adversary.dir/CohenPetrankProgram.cpp.o"
  "CMakeFiles/pcb_adversary.dir/CohenPetrankProgram.cpp.o.d"
  "CMakeFiles/pcb_adversary.dir/PatternWorkloads.cpp.o"
  "CMakeFiles/pcb_adversary.dir/PatternWorkloads.cpp.o.d"
  "CMakeFiles/pcb_adversary.dir/Program.cpp.o"
  "CMakeFiles/pcb_adversary.dir/Program.cpp.o.d"
  "CMakeFiles/pcb_adversary.dir/ProgramFactory.cpp.o"
  "CMakeFiles/pcb_adversary.dir/ProgramFactory.cpp.o.d"
  "CMakeFiles/pcb_adversary.dir/RobsonCore.cpp.o"
  "CMakeFiles/pcb_adversary.dir/RobsonCore.cpp.o.d"
  "CMakeFiles/pcb_adversary.dir/RobsonProgram.cpp.o"
  "CMakeFiles/pcb_adversary.dir/RobsonProgram.cpp.o.d"
  "CMakeFiles/pcb_adversary.dir/SyntheticWorkloads.cpp.o"
  "CMakeFiles/pcb_adversary.dir/SyntheticWorkloads.cpp.o.d"
  "CMakeFiles/pcb_adversary.dir/WorkloadSpec.cpp.o"
  "CMakeFiles/pcb_adversary.dir/WorkloadSpec.cpp.o.d"
  "libpcb_adversary.a"
  "libpcb_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcb_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
