file(REMOVE_RECURSE
  "libpcb_adversary.a"
)
