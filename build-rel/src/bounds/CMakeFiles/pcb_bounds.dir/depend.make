# Empty dependencies file for pcb_bounds.
# This may be replaced when dependencies are built.
