file(REMOVE_RECURSE
  "libpcb_bounds.a"
)
