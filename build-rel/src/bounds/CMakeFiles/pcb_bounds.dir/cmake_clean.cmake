file(REMOVE_RECURSE
  "CMakeFiles/pcb_bounds.dir/BenderskyPetrankBounds.cpp.o"
  "CMakeFiles/pcb_bounds.dir/BenderskyPetrankBounds.cpp.o.d"
  "CMakeFiles/pcb_bounds.dir/BoundSweep.cpp.o"
  "CMakeFiles/pcb_bounds.dir/BoundSweep.cpp.o.d"
  "CMakeFiles/pcb_bounds.dir/CohenPetrankBounds.cpp.o"
  "CMakeFiles/pcb_bounds.dir/CohenPetrankBounds.cpp.o.d"
  "CMakeFiles/pcb_bounds.dir/Planning.cpp.o"
  "CMakeFiles/pcb_bounds.dir/Planning.cpp.o.d"
  "CMakeFiles/pcb_bounds.dir/RobsonBounds.cpp.o"
  "CMakeFiles/pcb_bounds.dir/RobsonBounds.cpp.o.d"
  "libpcb_bounds.a"
  "libpcb_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcb_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
