file(REMOVE_RECURSE
  "CMakeFiles/index_equiv_test.dir/index_equiv_test.cpp.o"
  "CMakeFiles/index_equiv_test.dir/index_equiv_test.cpp.o.d"
  "index_equiv_test"
  "index_equiv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_equiv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
