# Empty dependencies file for index_equiv_test.
# This may be replaced when dependencies are built.
