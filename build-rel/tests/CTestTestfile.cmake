# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-rel/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(support_test "/root/repo/build-rel/tests/support_test")
set_tests_properties(support_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bounds_test "/root/repo/build-rel/tests/bounds_test")
set_tests_properties(bounds_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(heap_test "/root/repo/build-rel/tests/heap_test")
set_tests_properties(heap_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mm_test "/root/repo/build-rel/tests/mm_test")
set_tests_properties(mm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(adversary_test "/root/repo/build-rel/tests/adversary_test")
set_tests_properties(adversary_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(driver_test "/root/repo/build-rel/tests/driver_test")
set_tests_properties(driver_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(runner_test "/root/repo/build-rel/tests/runner_test")
set_tests_properties(runner_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(audit_test "/root/repo/build-rel/tests/audit_test")
set_tests_properties(audit_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(failure_test "/root/repo/build-rel/tests/failure_test")
set_tests_properties(failure_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fuzz_test "/root/repo/build-rel/tests/fuzz_test")
set_tests_properties(fuzz_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(obs_test "/root/repo/build-rel/tests/obs_test")
set_tests_properties(obs_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(index_equiv_test "/root/repo/build-rel/tests/index_equiv_test")
set_tests_properties(index_equiv_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
