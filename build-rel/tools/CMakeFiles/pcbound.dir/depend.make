# Empty dependencies file for pcbound.
# This may be replaced when dependencies are built.
