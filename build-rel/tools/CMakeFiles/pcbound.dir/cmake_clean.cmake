file(REMOVE_RECURSE
  "CMakeFiles/pcbound.dir/pcbound.cpp.o"
  "CMakeFiles/pcbound.dir/pcbound.cpp.o.d"
  "pcbound"
  "pcbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
