file(REMOVE_RECURSE
  "../bench/bench_manager_tuning"
  "../bench/bench_manager_tuning.pdb"
  "CMakeFiles/bench_manager_tuning.dir/bench_manager_tuning.cpp.o"
  "CMakeFiles/bench_manager_tuning.dir/bench_manager_tuning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_manager_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
