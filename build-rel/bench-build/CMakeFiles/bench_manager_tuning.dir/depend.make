# Empty dependencies file for bench_manager_tuning.
# This may be replaced when dependencies are built.
