
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_manager_tuning.cpp" "bench-build/CMakeFiles/bench_manager_tuning.dir/bench_manager_tuning.cpp.o" "gcc" "bench-build/CMakeFiles/bench_manager_tuning.dir/bench_manager_tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/src/obs/CMakeFiles/pcb_obs.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/runner/CMakeFiles/pcb_runner.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/driver/CMakeFiles/pcb_driver.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/adversary/CMakeFiles/pcb_adversary.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/mm/CMakeFiles/pcb_mm.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/bounds/CMakeFiles/pcb_bounds.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/heap/CMakeFiles/pcb_heap.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/support/CMakeFiles/pcb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
