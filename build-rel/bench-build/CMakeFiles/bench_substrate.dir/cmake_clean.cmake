file(REMOVE_RECURSE
  "../bench/bench_substrate"
  "../bench/bench_substrate.pdb"
  "CMakeFiles/bench_substrate.dir/bench_substrate.cpp.o"
  "CMakeFiles/bench_substrate.dir/bench_substrate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
