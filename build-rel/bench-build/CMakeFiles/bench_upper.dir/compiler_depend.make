# Empty compiler generated dependencies file for bench_upper.
# This may be replaced when dependencies are built.
