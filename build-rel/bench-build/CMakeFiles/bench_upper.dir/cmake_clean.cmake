file(REMOVE_RECURSE
  "../bench/bench_upper"
  "../bench/bench_upper.pdb"
  "CMakeFiles/bench_upper.dir/bench_upper.cpp.o"
  "CMakeFiles/bench_upper.dir/bench_upper.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_upper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
