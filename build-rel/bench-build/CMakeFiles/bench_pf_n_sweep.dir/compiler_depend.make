# Empty compiler generated dependencies file for bench_pf_n_sweep.
# This may be replaced when dependencies are built.
