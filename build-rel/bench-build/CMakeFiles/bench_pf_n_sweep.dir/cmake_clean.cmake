file(REMOVE_RECURSE
  "../bench/bench_pf_n_sweep"
  "../bench/bench_pf_n_sweep.pdb"
  "CMakeFiles/bench_pf_n_sweep.dir/bench_pf_n_sweep.cpp.o"
  "CMakeFiles/bench_pf_n_sweep.dir/bench_pf_n_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pf_n_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
