# Empty dependencies file for bench_robson.
# This may be replaced when dependencies are built.
