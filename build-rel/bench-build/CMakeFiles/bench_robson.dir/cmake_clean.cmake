file(REMOVE_RECURSE
  "../bench/bench_robson"
  "../bench/bench_robson.pdb"
  "CMakeFiles/bench_robson.dir/bench_robson.cpp.o"
  "CMakeFiles/bench_robson.dir/bench_robson.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_robson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
