file(REMOVE_RECURSE
  "../bench/bench_pf_sim"
  "../bench/bench_pf_sim.pdb"
  "CMakeFiles/bench_pf_sim.dir/bench_pf_sim.cpp.o"
  "CMakeFiles/bench_pf_sim.dir/bench_pf_sim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
