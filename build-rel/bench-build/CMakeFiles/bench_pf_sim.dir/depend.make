# Empty dependencies file for bench_pf_sim.
# This may be replaced when dependencies are built.
