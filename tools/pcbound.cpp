//===- tools/pcbound.cpp - The pcbound command-line tool ------------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// One binary for the common workflows:
//
//   pcbound bounds   [M= n= c=]                 all bounds + readings
//   pcbound plan     [M= n= target=]            inverse: budget for a target
//   pcbound simulate [program= policy= logm= logn= c= trace= verbose=]
//                                               run an execution, optionally
//                                               saving the event trace
//   pcbound replay   trace=FILE [policy= c= logm=]
//                                               re-run a saved trace's
//                                               program behaviour elsewhere
//   pcbound sweep    [program= policies= cs= logm= logn= --threads=N]
//                                               run a (policy x c) grid of
//                                               executions in parallel
//   pcbound fuzz     [seed= iterations= ops= policies= c= logm= maxlog=
//                     deep= index-oracle= repro-dir= --threads=N]
//                                               differential fuzzing: random
//                                               schedules through every
//                                               policy, invariants checked
//                                               after every step; failures
//                                               are shrunk and written as
//                                               replayable reproducers
//   pcbound replay-trace trace=FILE [policy= c=]
//                                               re-execute a fuzz reproducer
//                                               (or any saved trace) with
//                                               the invariant oracle on
//   pcbound trace-record out=FILE [pattern=|program=|session= format=]
//                                               capture a fuzz pattern, an
//                                               adversary program, or a
//                                               fleet session as a malloc
//                                               trace (text or binary)
//   pcbound trace-run trace=FILE [policy= c= controller= ...]
//                                               stream a malloc trace
//                                               through a manager under a
//                                               budget controller; memory
//                                               stays bounded by the live
//                                               window, not the op count
//   pcbound serve    [arenas= sessions= threads= policy= c= batch=
//                     resident= ops= maxlog= live= seed= sample= audit=
//                     slice= json= out= timeline= arena-rows= profile=]
//                                               concurrent multi-arena
//                                               service mode: N shared-
//                                               nothing arena shards
//                                               drained by a work-stealing
//                                               scheduler; deterministic
//                                               fleet report on stdout,
//                                               wall clock on stderr
//   pcbound exact    [Ms= ns= cs= witness-dir= --threads=N]
//                                               solve the allocation game
//                                               exactly on tiny parameters
//                                               and certify the closed-form
//                                               bounds layer against ground
//                                               truth (exit 1 on any
//                                               certificate failure)
//   pcbound policies                            list manager policies
//
//===----------------------------------------------------------------------===//

#include "adversary/ProgramFactory.h"
#include "adversary/SyntheticWorkloads.h"
#include "adversary/WorkloadSpec.h"
#include "bounds/BenderskyPetrankBounds.h"
#include "bounds/CohenPetrankBounds.h"
#include "bounds/Planning.h"
#include "bounds/RobsonBounds.h"
#include "driver/Auditors.h"
#include "driver/Execution.h"
#include "driver/TraceIO.h"
#include "exact/Certifier.h"
#include "exact/MinimaxSolver.h"
#include "exact/WitnessTrace.h"
#include "fuzz/DifferentialHarness.h"
#include "fuzz/WorkloadFuzzer.h"
#include "heap/HeapImage.h"
#include "heap/Metrics.h"
#include "mm/ManagerFactory.h"
#include "obs/Profiler.h"
#include "obs/Timeline.h"
#include "obs/TimelineSampler.h"
#include "realloc/ReallocationLedger.h"
#include "runner/ExperimentGrid.h"
#include "service/ServiceFleet.h"
#include "runner/ResultSink.h"
#include "runner/Runner.h"
#include "support/OptionParser.h"
#include "support/Table.h"
#include "trace/BudgetController.h"
#include "trace/TraceRecorder.h"
#include "trace/TraceRun.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <map>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>

using namespace pcb;

namespace {

int usage() {
  std::cerr
      << "usage: pcbound <command> [name=value ...]\n"
      << "  bounds    [M=256M n=1M c=50]\n"
      << "  plan      [M=256M n=1M target=2.5]\n"
      << "  simulate  [program=cohen-petrank policy=evacuating logm=14\n"
      << "             logn=8 c=50 family=all trace=FILE verbose=0\n"
      << "             timeline=FILE stride=1 controller=fixed period=16\n"
      << "             c1=1.0 smoothing=0.25]\n"
      << "  profile   [program=pf policy=evacuating logm=14 logn=8 c=50\n"
      << "             stride=1 timeline=FILE chart=1]\n"
      << "  replay    trace=FILE [policy=first-fit c=50 logm=14]\n"
      << "  sweep     [program=cohen-petrank policies=all family=all\n"
      << "             cs=10,25,50,75,100 logm=14 logn=8 --threads=<ncores>\n"
      << "             csv=0 json=0 out= timeline=PREFIX stride=1]\n"
      << "  fuzz      [seed=1 iterations=50 ops=384 policies=all family=all\n"
      << "             c=50 logm=12 maxlog=8 deep=64 index-oracle=1\n"
      << "             repro-dir=. --threads=N timeline=PREFIX trace=FILE\n"
      << "             controller=fixed period=16 c1=1.0 smoothing=0.25]\n"
      << "  replay-trace trace=FILE [policy=first-fit c=50]\n"
      << "  trace-record out=FILE [pattern=mixed | program=NAME | session=ID]\n"
      << "             [format=binary seed=1 ops=4096 live=4096 maxlog=8\n"
      << "             logm=14 logn=8 c=50 policy=first-fit]\n"
      << "  trace-run trace=FILE [policy=first-fit c=50 controller=fixed\n"
      << "             period=16 c1=1.0 smoothing=0.25 live=0 deep=0\n"
      << "             json=0 out= timeline= stride=1 profile=0]\n"
      << "  serve     [arenas=4 sessions=4096 threads=0 policy=evacuating\n"
      << "             c=50 batch=16 resident=8 ops=48 maxlog=6 live=1024\n"
      << "             seed=1 sample=64 audit=0 slice=32 json=0 out=\n"
      << "             timeline= arena-rows=32 profile=0 trace=FILE\n"
      << "             controller=fixed period=16 c1=1.0 smoothing=0.25]\n"
      << "  exact     [Ms=2,4,8 ns=2,4 cs=1,2,4,inf budget-cap=0\n"
      << "             node-limit=0 max-arena=0 witness-dir=DIR\n"
      << "             --threads=N csv=0 json=0 out=]\n"
      << "  policies\n"
      << "programs: robson, cohen-petrank, random-churn, markov-phase,\n"
      << "          stack-lifo, queue-fifo, sawtooth, update-fill-drain,\n"
      << "          update-alternating, update-comb, update-size-profile,\n"
      << "          update-mix, spec (with spec=FILE; see docs/MANUAL.md)\n"
      << "families: all, compaction, realloc (default policy/program set\n"
      << "          for simulate/sweep/fuzz)\n"
      << "controllers: fixed, periodic (period=), membalancer (c1=\n"
      << "          smoothing=)\n";
  return 2;
}

int cmdBounds(const OptionParser &Opts) {
  BoundParams P;
  P.M = Opts.getUInt("M", pow2(28));
  P.N = Opts.getUInt("n", pow2(20));
  P.C = Opts.getDouble("c", 50.0);
  if (!P.valid()) {
    std::cerr << "error: need power-of-two M >= n >= 2 and c > 1\n";
    return 1;
  }
  Table T({"bound", "waste_factor", "heap_words"});
  auto Row = [&](const std::string &Name, double Factor) {
    T.beginRow();
    T.addCell(Name);
    T.addCell(Factor, 3);
    T.addCell(uint64_t(Factor * double(P.M)));
  };
  Row("lower: Cohen-Petrank Theorem 1", cohenPetrankLowerWasteFactor(P));
  Row("lower: Bendersky-Petrank POPL'11",
      benderskyPetrankLowerWasteFactor(P));
  Row("lower/upper: Robson (no moving)", robsonWasteFactor(P));
  Row("upper: Bendersky-Petrank (c+1)M",
      benderskyPetrankUpperWasteFactor(P));
  if (P.C > 0.5 * double(P.logN()))
    Row("upper: Cohen-Petrank Theorem 2", cohenPetrankUpperWasteFactor(P));
  Row("upper: best known combined", newBestUpperWasteFactor(P));
  T.printAligned(std::cout);
  return 0;
}

int cmdPlan(const OptionParser &Opts) {
  uint64_t M = Opts.getUInt("M", pow2(28));
  uint64_t N = Opts.getUInt("n", pow2(20));
  double Target = Opts.getDouble("target", 2.5);
  CompactionPlan Plan = planCompactionBudget(M, N, Target);
  if (!Plan.Feasible) {
    std::cout << "target waste factor " << formatDouble(Target, 2)
              << " is not guaranteeable by any partial compactor at"
              << " these parameters\n";
    return 0;
  }
  std::cout << "to keep the guaranteed worst case at or below "
            << formatDouble(Target, 2) << " x live space (M="
            << formatWords(M) << ", n=" << formatWords(N) << "):\n"
            << "  move at least " << formatDouble(100.0 * Plan.MinMovedFraction, 2)
            << "% of all allocated words (c <= "
            << formatDouble(Plan.MaxQuota, 1) << ")\n"
            << "  Theorem 1 then forces at most "
            << formatDouble(Plan.AchievedLowerBound, 3) << " x\n";
  return 0;
}

/// Builds the program named program= — any factory name, or "spec" with
/// spec=FILE. Prints an error and returns null on failure. Shared by
/// simulate and profile.
std::unique_ptr<Program> buildProgram(const OptionParser &Opts,
                                      const std::string &ProgName,
                                      uint64_t M, unsigned LogN, double C) {
  if (ProgName == "spec") {
    std::string SpecPath = Opts.getString("spec", "");
    std::ifstream SpecIS(SpecPath);
    if (SpecPath.empty() || !SpecIS) {
      std::cerr << "error: program=spec needs a readable spec=FILE\n";
      return nullptr;
    }
    WorkloadSpec Spec;
    std::string Error;
    if (!parseWorkloadSpec(SpecIS, Spec, Error)) {
      std::cerr << "error: " << SpecPath << ": " << Error << "\n";
      return nullptr;
    }
    return std::make_unique<SpecProgram>(M, Spec);
  }
  std::string Error;
  auto Prog = createProgramChecked(ProgName, M, LogN, C, &Error);
  if (!Prog)
    std::cerr << "error: " << Error << "\n";
  return Prog;
}

/// Builds a sampler from the common stride= option; attached only when
/// the caller asked for a timeline.
TimelineSampler::Options samplerOptions(const OptionParser &Opts) {
  TimelineSampler::Options SO;
  SO.Stride = std::max<uint64_t>(1, Opts.getUInt("stride", 1));
  return SO;
}

/// Parses the shared budget-controller options (controller= period= c1=
/// smoothing=) and validates the name against the factory. Prints an
/// error and returns false on an unknown controller.
bool parseControllerSpec(const OptionParser &Opts, ControllerSpec &Spec) {
  Spec.Name = Opts.getString("controller", "fixed");
  Spec.Period = std::max<uint64_t>(1, Opts.getUInt("period", 16));
  Spec.C1 = Opts.getDouble("c1", 1.0);
  Spec.Smoothing = Opts.getDouble("smoothing", 0.25);
  std::string Error;
  if (!createControllerChecked(Spec, &Error)) {
    std::cerr << "error: " << Error << "\n";
    return false;
  }
  return true;
}

/// Loads and materializes the malloc trace at \p Path into the
/// ordinal-free TraceOp convention, for the consumers that hold a trace
/// whole (fuzz corpora, fleet session classes). Sets \p PeakLiveWords to
/// the trace's peak live volume. Prints an error and returns null on any
/// validation failure.
std::shared_ptr<const std::vector<TraceOp>>
loadMallocTrace(const std::string &Path, uint64_t &PeakLiveWords) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS) {
    std::cerr << "error: cannot read '" << Path << "'\n";
    return nullptr;
  }
  TraceReader R(IS);
  std::string Error;
  std::vector<TraceOp> Ops = materializeTrace(R, &Error);
  if (!Error.empty()) {
    std::cerr << "error: " << Path << ": " << Error << "\n";
    return nullptr;
  }
  PeakLiveWords = R.peakLiveWords();
  return std::make_shared<const std::vector<TraceOp>>(std::move(Ops));
}

int cmdSimulate(const OptionParser &Opts) {
  // family=realloc retargets the defaults at the reallocation
  // workbench; explicit program=/policy= always win.
  std::string Family = Opts.getString("family", "all");
  if (Family != "all" && Family != "compaction" && Family != "realloc") {
    std::cerr << "error: unknown family '" << Family
              << "'; valid families: all, compaction, realloc\n";
    return 1;
  }
  bool Realloc = Family == "realloc";
  std::string ProgName =
      Opts.getString("program", Realloc ? "update-mix" : "cohen-petrank");
  std::string Policy =
      Opts.getString("policy", Realloc ? "realloc-jin" : "evacuating");
  unsigned LogM = unsigned(Opts.getUInt("logm", 14));
  unsigned LogN = unsigned(Opts.getUInt("logn", 8));
  double C = Opts.getDouble("c", 50.0);
  bool Verbose = Opts.getBool("verbose", false);
  uint64_t M = pow2(LogM);

  Heap H;
  std::string FactoryError;
  auto MM = createManagerChecked(Policy, H, C, /*LiveBound=*/M, &FactoryError);
  if (!MM) {
    std::cerr << "error: " << FactoryError << "\n";
    return 1;
  }
  std::unique_ptr<Program> Prog = buildProgram(Opts, ProgName, M, LogN, C);
  if (!Prog)
    return 1;
  ControllerSpec CtlSpec;
  if (!parseControllerSpec(Opts, CtlSpec))
    return 1;
  std::unique_ptr<BudgetController> Ctrl = createController(CtlSpec);

  EventLog Log;
  Execution::Options ExecOpts;
  std::string TracePath = Opts.getString("trace", "");
  if (!TracePath.empty())
    ExecOpts.Log = &Log;
  Execution E(*MM, *Prog, M, ExecOpts);
  attachController(E, *MM, *Ctrl);

  std::string TimelinePath = Opts.getString("timeline", "");
  TimelineSampler Sampler(samplerOptions(Opts));
  if (!TimelinePath.empty())
    Sampler.attach(E);

  if (Verbose) {
    while (true) {
      bool More = E.runStep();
      const HeapStats &S = H.stats();
      std::cout << "step " << E.stepsRun() << ": live=" << S.LiveWords
                << " heap=" << S.HighWaterMark << " moved=" << S.MovedWords
                << "\n"
                << renderHeapImage(H, S.HighWaterMark, 72, 2) << "\n";
      if (!More)
        break;
    }
  }
  ExecutionResult R = E.run();
  FragmentationMetrics FM = measureFragmentation(H);

  std::cout << Prog->name() << " vs " << MM->name() << " (M="
            << formatWords(M) << ", n=" << formatWords(pow2(LogN))
            << ", c=" << C << ")\n"
            << "  heap size HS(A,P)   " << R.HeapSize << " words ("
            << formatDouble(R.wasteFactor(M), 3) << " x M)\n"
            << "  peak live           " << R.PeakLiveWords << "\n"
            << "  total allocated     " << R.TotalAllocatedWords << "\n"
            << "  moved (compaction)  " << R.MovedWords << "\n"
            << "  utilization         " << formatDouble(FM.Utilization, 3)
            << ", external fragmentation "
            << formatDouble(FM.ExternalFragmentation, 3) << "\n";
  // The reallocation family's score line; compaction-family output is
  // unchanged byte for byte.
  if (const ReallocationLedger *RL = MM->reallocationLedger())
    std::cout << "  overhead ratio      "
              << formatDouble(RL->overheadRatio(), 4) << " (worst prefix "
              << formatDouble(RL->maxPrefixRatio(), 4) << ", bound "
              << (std::isfinite(MM->overheadBound())
                      ? formatDouble(MM->overheadBound(), 1)
                      : std::string("inf"))
              << ")\n";
  // The default fixed trigger never denies, so the line (and the whole
  // gate) only appears when a controller was actually asked for —
  // keeping the report byte-identical to earlier releases otherwise.
  if (CtlSpec.Name != "fixed")
    std::cout << "  controller          " << Ctrl->name() << " (granted "
              << Ctrl->grants() << ", denied " << Ctrl->denials() << ")\n";

  if (!TracePath.empty()) {
    std::ofstream OS(TracePath);
    if (!OS) {
      std::cerr << "error: cannot write '" << TracePath << "'\n";
      return 1;
    }
    OS << "# pcbound trace: " << Prog->name() << " vs " << MM->name()
       << "\n";
    writeEventLog(OS, Log);
    std::cout << "  trace written to    " << TracePath << " ("
              << Log.size() << " events)\n";
  }
  if (!TimelinePath.empty()) {
    Sampler.finish(E);
    std::string Error;
    if (!Sampler.timeline().writeFile(TimelinePath, &Error)) {
      std::cerr << "error: " << Error << "\n";
      return 1;
    }
    std::cout << "  timeline written to " << TimelinePath << " ("
              << Sampler.timeline().size() << " points, stride "
              << Sampler.stride() << ")\n";
  }
  return 0;
}

int cmdProfile(const OptionParser &Opts) {
  std::string ProgName = Opts.getString("program", "pf");
  std::string Policy = Opts.getString("policy", "evacuating");
  unsigned LogM = unsigned(Opts.getUInt("logm", 14));
  unsigned LogN = unsigned(Opts.getUInt("logn", 8));
  double C = Opts.getDouble("c", 50.0);
  bool Chart = Opts.getBool("chart", true);
  std::string TimelinePath = Opts.getString("timeline", "");
  uint64_t M = pow2(LogM);

  Heap H;
  std::string FactoryError;
  auto MM = createManagerChecked(Policy, H, C, /*LiveBound=*/M, &FactoryError);
  if (!MM) {
    std::cerr << "error: " << FactoryError << "\n";
    return 1;
  }
  std::unique_ptr<Program> Prog = buildProgram(Opts, ProgName, M, LogN, C);
  if (!Prog)
    return 1;

  Execution E(*MM, *Prog, M);
  TimelineSampler Sampler(samplerOptions(Opts));
  Sampler.attach(E);

  Profiler Prof;
  auto Start = std::chrono::steady_clock::now();
  ExecutionResult R;
  {
    ProfilerScope Scope(Prof);
    R = E.run();
  }
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  Sampler.finish(E);
  const Timeline &TL = Sampler.timeline();

  std::cout << "# profile: " << Prog->name() << " vs " << MM->name()
            << " (M=" << formatWords(M) << ", n=" << formatWords(pow2(LogN))
            << ", c=" << C << ")\n"
            << "# HS " << R.HeapSize << " words ("
            << formatDouble(R.wasteFactor(M), 3) << " x M), " << R.Steps
            << " steps, moved " << R.MovedWords << ", wall "
            << formatDouble(Wall, 3) << "s, "
            << uint64_t(Wall > 0.0 ? double(R.Steps) / Wall : 0.0)
            << " steps/s\n"
            << "# timeline: " << TL.size() << " points, stride "
            << Sampler.stride() << "\n";
  if (Chart)
    TL.printCharts(std::cout);
  std::cout << "\n";
  Prof.printReport(std::cout, Wall);

  if (!TimelinePath.empty()) {
    std::string Error;
    if (!TL.writeFile(TimelinePath, &Error)) {
      std::cerr << "error: " << Error << "\n";
      return 1;
    }
    std::cout << "# timeline written to " << TimelinePath << "\n";
  }
  return 0;
}

int cmdReplay(const OptionParser &Opts) {
  std::string TracePath = Opts.getString("trace", "");
  if (TracePath.empty()) {
    std::cerr << "error: replay needs trace=FILE\n";
    return 1;
  }
  std::ifstream IS(TracePath);
  if (!IS) {
    std::cerr << "error: cannot read '" << TracePath << "'\n";
    return 1;
  }
  EventLog Log;
  if (!readEventLog(IS, Log)) {
    std::cerr << "error: malformed trace '" << TracePath << "'\n";
    return 1;
  }
  AuditReport Audit = auditEvents(Log.events());
  std::cout << "trace: " << Log.size() << " events, "
            << Audit.NumAllocations << " allocs, " << Audit.NumFrees
            << " frees, " << Audit.NumMoves << " moves (original HS "
            << Audit.HighWaterMark << ")\n";

  std::string Policy = Opts.getString("policy", "first-fit");
  unsigned LogM = unsigned(Opts.getUInt("logm", 14));
  double C = Opts.getDouble("c", 50.0);
  uint64_t M = pow2(LogM);
  Heap H;
  std::string FactoryError;
  auto MM = createManagerChecked(Policy, H, C, /*LiveBound=*/M, &FactoryError);
  if (!MM) {
    std::cerr << "error: " << FactoryError << "\n";
    return 1;
  }
  TraceReplayProgram Prog(Log.toTrace());
  Execution E(*MM, Prog, M);
  ExecutionResult R = E.run();
  std::cout << "replayed through " << MM->name() << ": HS " << R.HeapSize
            << " words (" << formatDouble(R.wasteFactor(M), 3)
            << " x M), moved " << R.MovedWords << "\n";
  return 0;
}

/// Resolves the family= axis ("all", "compaction", "realloc") to the
/// policy list it denotes — the default when policies= is absent or
/// "all". Prints an error and returns false on an unknown family.
bool familyPolicies(const OptionParser &Opts,
                    std::vector<std::string> &Policies) {
  std::string Family = Opts.getString("family", "all");
  if (Family == "all")
    Policies = allManagerPolicies();
  else if (Family == "compaction")
    Policies = compactionFamilyPolicies();
  else if (Family == "realloc")
    Policies = reallocManagerPolicies();
  else {
    std::cerr << "error: unknown family '" << Family
              << "'; valid families: all, compaction, realloc\n";
    return false;
  }
  return true;
}

/// Parses the policies= option ("all" — meaning the family= axis — or a
/// comma-separated list), validating every name against the factory.
bool parsePolicyList(const OptionParser &Opts, uint64_t LiveBound,
                     std::vector<std::string> &Policies) {
  std::string PolicyList = Opts.getString("policies", "all");
  if (PolicyList == "all") {
    if (!familyPolicies(Opts, Policies))
      return false;
  } else {
    std::istringstream IS(PolicyList);
    std::string Item;
    while (std::getline(IS, Item, ','))
      if (!Item.empty())
        Policies.push_back(Item);
  }
  for (const std::string &Policy : Policies) {
    Heap Probe;
    std::string Error;
    if (!createManagerChecked(Policy, Probe, 50.0, LiveBound, &Error)) {
      std::cerr << "error: " << Error << "\n";
      return false;
    }
  }
  return !Policies.empty();
}

int cmdSweep(const OptionParser &Opts) {
  std::string ProgName = Opts.getString("program", "cohen-petrank");
  unsigned LogM = unsigned(Opts.getUInt("logm", 14));
  unsigned LogN = unsigned(Opts.getUInt("logn", 8));
  uint64_t M = pow2(LogM);

  std::vector<double> Cs;
  {
    std::istringstream IS(Opts.getString("cs", "10,25,50,75,100"));
    std::string Item;
    while (std::getline(IS, Item, ',')) {
      if (Item.empty())
        continue;
      char *End = nullptr;
      double Value = std::strtod(Item.c_str(), &End);
      if (!End || *End != '\0') {
        std::cerr << "error: invalid number '" << Item << "' in cs=\n";
        return 1;
      }
      Cs.push_back(Value);
    }
  }
  // Validate every name once, serially, before fanning out.
  std::vector<std::string> Policies;
  if (!parsePolicyList(Opts, /*LiveBound=*/M, Policies))
    return 1;
  std::string FactoryError;
  if (!createProgramChecked(ProgName, M, LogN, 50.0, &FactoryError)) {
    std::cerr << "error: " << FactoryError << "\n";
    return 1;
  }

  RunnerOptions RO;
  RO.Threads = unsigned(Opts.getUInt("threads", 0));
  if (Opts.has("progress"))
    RO.Progress = Opts.getBool("progress", true) ? 1 : 0;
  Runner R(RO);

  std::cout << "# sweep: " << ProgName << " vs " << Policies.size()
            << " policies x " << Cs.size() << " quotas (M=" << formatWords(M)
            << ", n=" << formatWords(pow2(LogN)) << ", threads="
            << R.threads() << ")\n";

  ExperimentGrid Grid;
  Grid.addAxis("c", Cs);
  Grid.addAxis("policy", Policies);

  ResultSink Sink({"c", "policy", "measured_HS", "measured_waste",
                   "moved_words", "overhead", "allocs", "frees", "steps"});
  std::string TimelinePrefix = Opts.getString("timeline", "");
  TimelineSampler::Options SO = samplerOptions(Opts);
  try {
    R.runRows(
        Grid,
        [&](const GridCell &Cell) {
          double C = Cell.num("c");
          const std::string &Policy = Cell.str("policy");
          Heap H;
          auto MM = createManager(Policy, H, C, /*LiveBound=*/M);
          auto Prog = createProgram(ProgName, M, LogN, C);
          Execution E(*MM, *Prog, M);
          TimelineSampler Sampler(SO);
          if (!TimelinePrefix.empty())
            Sampler.attach(E);
          ExecutionResult Res = E.run();
          if (!TimelinePrefix.empty()) {
            Sampler.finish(E);
            std::string Tag = "c" + formatDouble(C, 0) + "-" + Policy;
            std::string Path = timelineCellPath(TimelinePrefix, Tag);
            std::string Error;
            if (!Sampler.timeline().writeFile(Path, &Error))
              throw std::runtime_error(Error);
          }
          return Row()
              .addCell(formatDouble(C, 0))
              .addCell(Policy)
              .addCell(Res.HeapSize)
              .addCell(Res.wasteFactor(M), 3)
              .addCell(Res.MovedWords)
              .addCell(Res.overheadRatio(), 4)
              .addCell(Res.NumAllocations)
              .addCell(Res.NumFrees)
              .addCell(Res.Steps);
        },
        Sink);
  } catch (const std::exception &Ex) {
    std::cerr << "error: " << Ex.what() << "\n";
    return 1;
  }
  return Sink.emit(Opts) ? 0 : 1;
}

/// Everything one fuzz iteration produced, filled in by a worker thread
/// and reported serially afterwards.
struct FuzzIterationOutcome {
  bool Failed = false;
  uint64_t Seed = 0;
  std::string Pattern;
  size_t OriginalOps = 0;
  FuzzSchedule Minimal;
  DifferentialReport MinimalReport;
};

int cmdFuzz(const OptionParser &Opts) {
  uint64_t BaseSeed = Opts.getUInt("seed", 1);
  uint64_t Iterations = Opts.getUInt("iterations", 50);
  uint64_t NumOps = Opts.getUInt("ops", 384);
  unsigned LogM = unsigned(Opts.getUInt("logm", 12));
  unsigned MaxLog = unsigned(Opts.getUInt("maxlog", 8));
  double C = Opts.getDouble("c", 50.0);
  uint64_t Deep = Opts.getUInt("deep", 64);
  std::string ReproDir = Opts.getString("repro-dir", ".");
  std::string TimelinePrefix = Opts.getString("timeline", "");
  if (Iterations == 0 || NumOps == 0) {
    std::cerr << "error: iterations= and ops= must be positive\n";
    return 1;
  }
  if (MaxLog > LogM || LogM > 24) {
    std::cerr << "error: need maxlog <= logm <= 24\n";
    return 1;
  }

  std::vector<std::string> Policies;
  if (!parsePolicyList(Opts, pow2(LogM), Policies))
    return 1;

  // trace=FILE fuzzes seeded windows of a recorded malloc trace instead
  // of cycling the synthetic patterns.
  std::shared_ptr<const std::vector<TraceOp>> FuzzTrace;
  std::string FuzzTracePath = Opts.getString("trace", "");
  if (!FuzzTracePath.empty()) {
    uint64_t TracePeak = 0;
    FuzzTrace = loadMallocTrace(FuzzTracePath, TracePeak);
    if (!FuzzTrace)
      return 1;
    if (FuzzTrace->empty()) {
      std::cerr << "error: " << FuzzTracePath << ": empty trace\n";
      return 1;
    }
  }

  DifferentialHarness::Options HO;
  HO.Policies = Policies;
  HO.C = C;
  HO.DeepCheckEvery = Deep;
  // The replay-determinism check rides on first-fit, which family=
  // realloc excludes from the policy list; re-home it so the check
  // stays live for the reallocation family.
  if (Opts.getString("family", "all") == "realloc")
    HO.ReplayCheckPolicy = "realloc-bucket";
  if (!parseControllerSpec(Opts, HO.Controller))
    return 1;
  // heap-oracle=0 drops the per-step live-vs-reference full-heap
  // cross-check (on by default; the CI fuzz smoke relies on it).
  // index-oracle is the flag's pre-promotion name, kept as an alias.
  HO.HeapParity =
      Opts.getBool("heap-oracle", Opts.getBool("index-oracle", true));
  DifferentialHarness Harness(HO);

  RunnerOptions RO;
  RO.Threads = unsigned(Opts.getUInt("threads", 0));
  if (Opts.has("progress"))
    RO.Progress = Opts.getBool("progress", true) ? 1 : 0;
  Runner R(RO);

  std::cout << "# fuzz: " << Iterations << " schedules x "
            << Policies.size() << " policies (seed=" << BaseSeed
            << ", ops=" << NumOps << ", M=" << formatWords(pow2(LogM))
            << ", c=" << C << ", threads=" << R.threads()
            << (FuzzTrace ? ", trace-backed" : "") << ")\n";

  const std::vector<WorkloadFuzzer::Pattern> &Patterns =
      WorkloadFuzzer::allPatterns();
  std::vector<FuzzIterationOutcome> Outcomes{size_t(Iterations)};
  R.forEachCell(Iterations, [&](uint64_t I) {
    WorkloadFuzzer::Options FO;
    FO.Seed = splitSeed(BaseSeed, I);
    FO.NumOps = NumOps;
    FO.LiveBound = pow2(LogM);
    FO.MaxLogSize = MaxLog;
    if (FuzzTrace) {
      FO.P = WorkloadFuzzer::Pattern::Trace;
      FO.TraceOps = FuzzTrace;
    } else {
      FO.P = Patterns[size_t(I) % Patterns.size()];
    }
    FuzzSchedule S = WorkloadFuzzer(FO).generate();

    FuzzIterationOutcome &O = Outcomes[size_t(I)];
    O.Seed = FO.Seed;
    O.Pattern = S.Pattern;
    O.OriginalOps = S.size();
    if (Harness.run(S).clean())
      return;
    O.Failed = true;
    O.Minimal = Harness.shrink(S);
    O.MinimalReport = Harness.run(O.Minimal);
  });

  uint64_t TotalOps = 0;
  size_t NumFailed = 0;
  for (const FuzzIterationOutcome &O : Outcomes) {
    TotalOps += O.OriginalOps;
    if (!O.Failed)
      continue;
    ++NumFailed;
    std::cerr << "fuzz: seed " << O.Seed << " (" << O.Pattern << ", "
              << O.OriginalOps << " ops) violated invariants; minimized to "
              << O.Minimal.size() << " ops\n"
              << O.MinimalReport.summary();
    const PolicyRunResult *Failing = O.MinimalReport.firstFailing();
    if (!Failing && !O.MinimalReport.Runs.empty())
      Failing = &O.MinimalReport.Runs.front();
    if (!Failing)
      continue;
    std::string Path =
        ReproDir + "/fuzz-repro-seed" + std::to_string(O.Seed) + ".trace";
    std::ofstream OS(Path);
    if (!OS) {
      std::cerr << "fuzz: cannot write reproducer '" << Path << "'\n";
      continue;
    }
    DifferentialHarness::writeReproducer(OS, O.Minimal, *Failing);
    std::cerr << "fuzz: reproducer written; re-run with: pcbound"
              << " replay-trace trace=" << Path << "\n";
    if (!TimelinePrefix.empty()) {
      // Re-run just the failing policy with a sampler attached, so the
      // reproducer ships with the heap-state series that led to the
      // violation. Replay determinism checking is off: this run exists
      // only to observe.
      TimelineSampler Sampler;
      DifferentialHarness::Options TO;
      TO.Policies = {Failing->Policy};
      TO.C = C;
      TO.DeepCheckEvery = Deep;
      TO.Controller = HO.Controller;
      TO.ReplayCheckPolicy.clear();
      TO.OnExecution = [&Sampler](Execution &E, const std::string &) {
        Sampler.attach(E);
      };
      DifferentialHarness(TO).run(O.Minimal);
      std::string TLPath = timelineCellPath(
          TimelinePrefix, "seed" + std::to_string(O.Seed));
      std::string Error;
      if (!Sampler.timeline().writeFile(TLPath, &Error))
        std::cerr << "fuzz: " << Error << "\n";
      else
        std::cerr << "fuzz: timeline written to " << TLPath << " ("
                  << Sampler.timeline().size() << " points)\n";
    }
  }

  if (NumFailed == 0) {
    std::cout << "fuzz: OK — " << TotalOps << " ops, no invariant"
              << " violations under any policy\n";
    return 0;
  }
  std::cout << "fuzz: FAIL — " << NumFailed << " of " << Iterations
            << " schedules violated invariants (reproducers in '"
            << ReproDir << "')\n";
  return 1;
}

int cmdReplayTrace(const OptionParser &Opts) {
  std::string TracePath = Opts.getString("trace", "");
  if (TracePath.empty()) {
    std::cerr << "error: replay-trace needs trace=FILE\n";
    return 1;
  }
  std::ifstream IS(TracePath);
  if (!IS) {
    std::cerr << "error: cannot read '" << TracePath << "'\n";
    return 1;
  }
  std::stringstream Buffer;
  Buffer << IS.rdbuf();
  const std::string Content = Buffer.str();

  // Reproducers written by `pcbound fuzz` carry their policy and quota in
  // a header comment; explicit options still win.
  std::string HeaderPolicy = "first-fit";
  double HeaderC = 50.0;
  {
    const std::string Magic = "# pcbound-fuzz-repro";
    std::istringstream Lines(Content);
    std::string Line;
    while (std::getline(Lines, Line)) {
      if (Line.rfind(Magic, 0) != 0)
        continue;
      std::istringstream Fields(Line.substr(Magic.size()));
      std::string Field;
      while (Fields >> Field) {
        size_t Eq = Field.find('=');
        if (Eq == std::string::npos)
          continue;
        std::string Key = Field.substr(0, Eq);
        std::string Value = Field.substr(Eq + 1);
        if (Key == "policy")
          HeaderPolicy = Value;
        else if (Key == "c")
          HeaderC = std::strtod(Value.c_str(), nullptr);
      }
      break;
    }
  }
  std::string Policy = Opts.getString("policy", HeaderPolicy);
  double C = Opts.getDouble("c", HeaderC);
  {
    Heap Probe;
    std::string Error;
    if (!createManagerChecked(Policy, Probe, 50.0, /*LiveBound=*/pow2(12),
                              &Error)) {
      std::cerr << "error: " << Error << "\n";
      return 1;
    }
  }

  EventLog Log;
  std::istringstream TraceIS(Content);
  std::string Error;
  if (!readEventLog(TraceIS, Log, &Error)) {
    std::cerr << "error: " << TracePath << ": " << Error << "\n";
    return 1;
  }

  AuditReport Audit = auditEvents(Log.events());
  std::cout << "trace: " << Log.size() << " events, "
            << Audit.NumAllocations << " allocs, " << Audit.NumFrees
            << " frees, " << Audit.NumMoves << " moves (recorded HS "
            << Audit.HighWaterMark << ")\n";

  int NumProblems = 0;
  if (!Audit.Consistent) {
    std::cout << "recorded events: INCONSISTENT (double free, overlap,"
              << " or move of a dead object)\n";
    ++NumProblems;
  }
  if (!auditBudgetHistory(Log.events(), C)) {
    std::cout << "recorded events: c-partial budget (c=" << C
              << ") violated on some prefix\n";
    ++NumProblems;
  }

  std::vector<TraceOp> Trace = Log.toTrace();
  std::string Why;
  if (!validateTrace(Trace, &Why)) {
    std::cout << "replay: trace is not replayable (" << Why << ")\n"
              << "replay-trace: FAIL\n";
    return 1;
  }
  DifferentialHarness::Options HO;
  HO.Policies = {Policy};
  HO.C = C;
  HO.ReplayCheckPolicy = Policy;
  DifferentialReport Rep =
      DifferentialHarness(HO).run(scheduleFromTrace(Trace, 0, "replay"));
  for (const Violation &V : Rep.allViolations()) {
    std::cout << "violation: " << V.describe() << "\n";
    ++NumProblems;
  }
  if (!Rep.Runs.empty()) {
    const HeapStats &S = Rep.Runs.front().Stats;
    std::cout << "replayed through " << Policy << " (c=" << C << "): HS "
              << S.HighWaterMark << " words, moved " << S.MovedWords
              << " in " << S.NumMoves << " moves\n";
  }
  std::cout << (NumProblems ? "replay-trace: FAIL\n" : "replay-trace: OK\n");
  return NumProblems ? 1 : 0;
}

/// Parses a fuzz pattern name ("uniform", "comb", "mixed", ...).
/// Pattern::Trace is not addressable by name: it needs an external trace
/// to draw from.
bool parseFuzzPattern(const std::string &Name, WorkloadFuzzer::Pattern &P) {
  for (WorkloadFuzzer::Pattern Cand : WorkloadFuzzer::allPatterns())
    if (WorkloadFuzzer::patternName(Cand) == Name) {
      P = Cand;
      return true;
    }
  return false;
}

int cmdTraceRecord(const OptionParser &Opts) {
  std::string OutPath = Opts.getString("out", "");
  if (OutPath.empty()) {
    std::cerr << "error: trace-record needs out=FILE\n";
    return 1;
  }
  TraceFraming Framing = TraceFraming::Binary;
  std::string FramingName = Opts.getString("format", "binary");
  if (!parseFraming(FramingName, Framing)) {
    std::cerr << "error: unknown format '" << FramingName
              << "' (text or binary)\n";
    return 1;
  }
  std::string ProgName = Opts.getString("program", "");
  bool HaveSession = Opts.has("session");
  if (!ProgName.empty() && HaveSession) {
    std::cerr << "error: pick one source: pattern=, program=, or session=\n";
    return 1;
  }

  std::ofstream OS(OutPath, std::ios::binary);
  if (!OS) {
    std::cerr << "error: cannot write '" << OutPath << "'\n";
    return 1;
  }
  TraceRecorder Rec(OS, Framing);
  std::string Source;
  if (!ProgName.empty()) {
    // A live program run, recorded off the heap's event stream. The
    // policy only shapes placement, which the trace does not record, but
    // stays selectable so budget-starved fallback paths (which can change
    // the *schedule* of a c-aware adversary) are reachable too.
    unsigned LogM = unsigned(Opts.getUInt("logm", 14));
    unsigned LogN = unsigned(Opts.getUInt("logn", 8));
    double C = Opts.getDouble("c", 50.0);
    uint64_t M = pow2(LogM);
    Heap H;
    std::string Error;
    auto MM = createManagerChecked(Opts.getString("policy", "first-fit"), H,
                                   C, /*LiveBound=*/M, &Error);
    if (!MM) {
      std::cerr << "error: " << Error << "\n";
      return 1;
    }
    std::unique_ptr<Program> Prog = buildProgram(Opts, ProgName, M, LogN, C);
    if (!Prog)
      return 1;
    H.setEventCallback(Rec.heapTap());
    Execution E(*MM, *Prog, M);
    E.run();
    Source = Prog->name();
  } else if (HaveSession) {
    // One fleet session, exactly as `pcbound serve` would generate it.
    SessionParams SP;
    SP.FleetSeed = Opts.getUInt("seed", 1);
    SP.TargetOps = Opts.getUInt("ops", 48);
    SP.MaxLogSize = unsigned(Opts.getUInt("maxlog", 6));
    SP.LiveBound =
        std::max<uint64_t>(1, Opts.getUInt("live", uint64_t(1) << 10));
    uint64_t GlobalId = Opts.getUInt("session", 0);
    Rec.record(generateSessionTrace(SP, GlobalId));
    Source = "session-" + std::to_string(GlobalId);
  } else {
    std::string PatName = Opts.getString("pattern", "mixed");
    WorkloadFuzzer::Pattern P;
    if (!parseFuzzPattern(PatName, P)) {
      std::cerr << "error: unknown pattern '" << PatName << "' (one of:";
      for (WorkloadFuzzer::Pattern Cand : WorkloadFuzzer::allPatterns())
        std::cerr << " " << WorkloadFuzzer::patternName(Cand);
      std::cerr << ")\n";
      return 1;
    }
    WorkloadFuzzer::Options FO;
    FO.Seed = Opts.getUInt("seed", 1);
    FO.NumOps = Opts.getUInt("ops", 4096);
    FO.LiveBound =
        std::max<uint64_t>(1, Opts.getUInt("live", uint64_t(1) << 12));
    FO.MaxLogSize = unsigned(Opts.getUInt("maxlog", 8));
    FO.P = P;
    Rec.record(WorkloadFuzzer(FO).generate().materialize());
    Source = PatName;
  }
  OS.flush();
  if (!Rec.good() || !OS) {
    std::cerr << "error: write failure on '" << OutPath << "'\n";
    return 1;
  }
  std::cout << "trace-record: " << Rec.opsWritten() << " ops (" << Source
            << ") written to " << OutPath << " (" << framingName(Framing)
            << ")\n";
  return 0;
}

int cmdTraceRun(const OptionParser &Opts) {
  std::string TracePath = Opts.getString("trace", "");
  if (TracePath.empty()) {
    std::cerr << "error: trace-run needs trace=FILE\n";
    return 1;
  }
  std::ifstream IS(TracePath, std::ios::binary);
  if (!IS) {
    std::cerr << "error: cannot read '" << TracePath << "'\n";
    return 1;
  }

  TraceRunOptions RO;
  RO.Policy = Opts.getString("policy", "first-fit");
  RO.C = Opts.getDouble("c", 50.0);
  if (!parseControllerSpec(Opts, RO.Controller))
    return 1;
  RO.LiveBound = Opts.getUInt("live", 0);
  RO.DeepCheckEvery = Opts.getUInt("deep", 0);

  std::string TimelinePath = Opts.getString("timeline", "");
  TimelineSampler Sampler(samplerOptions(Opts));
  if (!TimelinePath.empty()) {
    RO.OnExecution = [&Sampler](Execution &E) { Sampler.attach(E); };
    RO.OnFinished = [&Sampler](Execution &E) { Sampler.finish(E); };
  }

  Profiler Prof;
  bool Profile = Opts.getBool("profile", false);
  TraceReader R(IS);
  TraceRunReport Report;
  auto Start = std::chrono::steady_clock::now();
  try {
    ProfilerScope Scope(Prof);
    Report = runTrace(R, RO, TracePath);
  } catch (const std::exception &Ex) {
    std::cerr << "error: " << Ex.what() << "\n";
    return 1;
  }
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

  // The report names the trace by basename so it is relocatable across
  // build trees; diagnostics above keep the full path.
  size_t Slash = TracePath.find_last_of('/');
  Report.Trace =
      Slash == std::string::npos ? TracePath : TracePath.substr(Slash + 1);

  // Wall clock (and the profiler, which holds timers) are
  // nondeterministic, so they go to stderr; stdout carries only the
  // deterministic report.
  std::cerr << "# trace-run: wall " << formatDouble(Wall, 3) << "s, "
            << uint64_t(Wall > 0.0 ? double(Report.OpsStreamed) / Wall : 0.0)
            << " ops/s, live window " << Report.PeakLiveWindow << " ids\n";
  if (Profile)
    Prof.printReport(std::cerr, Wall);

  if (Opts.getBool("json", false))
    Report.printJson(std::cout);
  else
    Report.printText(std::cout);

  std::string OutPath = Opts.getString("out", "");
  if (!OutPath.empty()) {
    std::string Error;
    if (!Report.writeFile(OutPath, &Error)) {
      std::cerr << "error: " << Error << "\n";
      return 1;
    }
    std::cerr << "# report written to " << OutPath << "\n";
  }
  if (!TimelinePath.empty()) {
    std::string Error;
    if (!Sampler.timeline().writeFile(TimelinePath, &Error)) {
      std::cerr << "error: " << Error << "\n";
      return 1;
    }
    std::cerr << "# timeline written to " << TimelinePath << " ("
              << Sampler.timeline().size() << " points, stride "
              << Sampler.stride() << ")\n";
  }
  return 0;
}

int cmdServe(const OptionParser &Opts) {
  FleetOptions FO;
  FO.NumArenas = unsigned(Opts.getUInt("arenas", 4));
  FO.NumSessions = Opts.getUInt("sessions", 4096);
  FO.Threads = unsigned(Opts.getUInt("threads", 0));
  FO.SliceFlushes = std::max<uint64_t>(1, Opts.getUInt("slice", 32));
  FO.Shard.Policy = Opts.getString("policy", "evacuating");
  FO.Shard.C = Opts.getDouble("c", 50.0);
  FO.Shard.BatchSize = std::max<uint64_t>(1, Opts.getUInt("batch", 16));
  FO.Shard.MaxResident = std::max<uint64_t>(1, Opts.getUInt("resident", 8));
  FO.Shard.SampleEverySessions = Opts.getUInt("sample", 64);
  FO.Shard.Audit = Opts.getBool("audit", false);
  FO.Shard.Session.FleetSeed = Opts.getUInt("seed", 1);
  FO.Shard.Session.TargetOps = Opts.getUInt("ops", 48);
  FO.Shard.Session.MaxLogSize = unsigned(Opts.getUInt("maxlog", 6));
  FO.Shard.Session.LiveBound =
      std::max<uint64_t>(1, Opts.getUInt("live", uint64_t(1) << 10));
  FO.ArenaRowLimit = unsigned(Opts.getUInt("arena-rows", 32));
  if (FO.NumArenas == 0) {
    std::cerr << "error: arenas= must be positive\n";
    return 1;
  }
  if (FO.Shard.Session.MaxLogSize > 24) {
    std::cerr << "error: need maxlog <= 24\n";
    return 1;
  }
  if (!parseControllerSpec(Opts, FO.Shard.Controller))
    return 1;
  std::string SessionTracePath = Opts.getString("trace", "");
  if (!SessionTracePath.empty()) {
    // Trace-backed fleet: every session replays this recorded schedule.
    // The session live bound must cover the trace's own peak, or the
    // arena bound would under-provision the managers that rely on it.
    uint64_t TracePeak = 0;
    FO.Shard.Session.Trace = loadMallocTrace(SessionTracePath, TracePeak);
    if (!FO.Shard.Session.Trace)
      return 1;
    FO.Shard.Session.LiveBound =
        std::max(FO.Shard.Session.LiveBound, std::max<uint64_t>(1, TracePeak));
  }

  Profiler Prof;
  if (Opts.getBool("profile", false))
    FO.Prof = &Prof;

  try {
    ServiceFleet Fleet(FO);
    Fleet.run();
    FleetReport R = Fleet.report();

    // Wall clock and scheduler observability are nondeterministic, so
    // they go to stderr; stdout carries only the deterministic report.
    double Wall = Fleet.wallSeconds();
    std::cerr << "# serve: wall " << formatDouble(Wall, 3) << "s, threads="
              << Fleet.threads() << ", slices=" << Fleet.slices()
              << ", steals=" << Fleet.steals() << ", "
              << uint64_t(Wall > 0.0 ? double(R.TotalSessions) / Wall : 0.0)
              << " sessions/s\n";
    if (FO.Prof)
      Prof.printReport(std::cerr, Wall);

    if (Opts.getBool("json", false)) {
      R.printJson(std::cout);
    } else {
      R.printText(std::cout);
      // Controller totals are deterministic (each shard's gate is a pure
      // function of its fixed schedule), so they belong on stdout — but
      // only when a gate was actually requested, keeping the default
      // report byte-identical to earlier releases. JSON output stays
      // pure FleetReport either way.
      if (FO.Shard.Controller.Name != "fixed") {
        uint64_t Grants = 0, Denials = 0;
        for (unsigned A = 0; A != FO.NumArenas; ++A) {
          Grants += Fleet.shard(A).controller().grants();
          Denials += Fleet.shard(A).controller().denials();
        }
        std::cout << "controller " << FO.Shard.Controller.Name << ": "
                  << Grants << " grants, " << Denials << " denials\n";
      }
    }

    std::string OutPath = Opts.getString("out", "");
    if (!OutPath.empty()) {
      std::string Error;
      if (!R.writeFile(OutPath, &Error)) {
        std::cerr << "error: " << Error << "\n";
        return 1;
      }
      std::cerr << "# report written to " << OutPath << "\n";
    }
    std::string TimelinePath = Opts.getString("timeline", "");
    if (!TimelinePath.empty()) {
      std::string Error;
      if (!R.FleetTimeline.writeFile(TimelinePath, &Error)) {
        std::cerr << "error: " << Error << "\n";
        return 1;
      }
      std::cerr << "# fleet timeline written to " << TimelinePath << " ("
                << R.FleetTimeline.size() << " points)\n";
    }
    return R.clean() ? 0 : 1;
  } catch (const std::exception &Ex) {
    std::cerr << "error: " << Ex.what() << "\n";
    return 1;
  }
}

/// Parses a comma-separated list of positive integers from option \p Opt.
bool parseUIntList(const std::string &Text, const char *Opt,
                   std::vector<uint64_t> &Out) {
  std::istringstream IS(Text);
  std::string Item;
  while (std::getline(IS, Item, ',')) {
    if (Item.empty())
      continue;
    char *End = nullptr;
    unsigned long long Value = std::strtoull(Item.c_str(), &End, 10);
    if (!End || *End != '\0' || Value == 0) {
      std::cerr << "error: invalid number '" << Item << "' in " << Opt
                << "=\n";
      return false;
    }
    Out.push_back(Value);
  }
  if (Out.empty())
    std::cerr << "error: " << Opt << "= must name at least one value\n";
  return !Out.empty();
}

/// A bound column for the exact table: "-" when the closed form does not
/// apply at the cell's parameters.
std::string formatBound(double Words) {
  return std::isnan(Words) ? std::string("-") : formatDouble(Words, 1);
}

int cmdExact(const OptionParser &Opts) {
  std::vector<uint64_t> Ms, Ns;
  if (!parseUIntList(Opts.getString("Ms", "2,4,8"), "Ms", Ms) ||
      !parseUIntList(Opts.getString("ns", "2,4"), "ns", Ns))
    return 1;

  // Quotas are integer denominators; "inf" is the non-moving manager
  // (solver convention C = 0 — see ExactParams).
  std::vector<std::pair<std::string, uint64_t>> Cs;
  {
    std::istringstream IS(Opts.getString("cs", "1,2,4,inf"));
    std::string Item;
    while (std::getline(IS, Item, ',')) {
      if (Item.empty())
        continue;
      if (Item == "inf" || Item == "infinity") {
        Cs.push_back({"inf", 0});
        continue;
      }
      char *End = nullptr;
      unsigned long long Value = std::strtoull(Item.c_str(), &End, 10);
      if (!End || *End != '\0' || Value == 0) {
        std::cerr << "error: invalid quota '" << Item
                  << "' in cs= (positive integer or inf)\n";
        return 1;
      }
      Cs.push_back({Item, Value});
    }
    if (Cs.empty()) {
      std::cerr << "error: cs= must name at least one quota\n";
      return 1;
    }
  }

  struct ExactCell {
    ExactParams P;
    std::string CLabel;
  };
  std::vector<ExactCell> Cells;
  unsigned Skipped = 0;
  for (uint64_t M : Ms)
    for (uint64_t N : Ns)
      for (const auto &[Label, C] : Cs) {
        ExactParams P;
        P.M = M;
        P.N = N;
        P.C = C;
        P.BudgetCap = Opts.getUInt("budget-cap", 0);
        P.NodeLimit = Opts.getUInt("node-limit", 0);
        P.MaxArena = unsigned(Opts.getUInt("max-arena", 0));
        if (N > M) {
          // Out of domain, not an error: a P2(M, n) program can never
          // allocate an object larger than its live bound.
          ++Skipped;
          continue;
        }
        if (!P.valid()) {
          std::cerr << "error: cell M=" << M << " n=" << N << " c=" << Label
                    << " is outside the solvable range (M <= 24,"
                    << " power-of-two n <= 16, arena <= 30)\n";
          return 1;
        }
        Cells.push_back({P, Label});
      }

  RunnerOptions RO;
  RO.Threads = unsigned(Opts.getUInt("threads", 0));
  if (Opts.has("progress"))
    RO.Progress = Opts.getBool("progress", true) ? 1 : 0;
  Runner R(RO);

  std::cout << "# exact: solving " << Cells.size() << " cells ("
            << Skipped << " out-of-domain skipped, threads=" << R.threads()
            << ")\n";

  std::vector<ExactCertificate> Certs{Cells.size()};
  R.forEachCell(Cells.size(), [&](uint64_t I) {
    const ExactParams &P = Cells[size_t(I)].P;
    Certs[size_t(I)] = certifyCell(P, solveExact(P));
  });

  ResultSink Sink({"M", "n", "c", "exact", "lower", "robson", "thm2",
                   "upper", "nodes", "status"});
  uint64_t NumOk = 0, NumStrict = 0, NumFailed = 0;
  for (size_t I = 0; I != Cells.size(); ++I) {
    const ExactCell &Cell = Cells[I];
    const ExactCertificate &Cert = Certs[I];
    uint64_t Nodes = 0;
    for (const ArenaOutcome &A : Cert.Result.Arenas)
      Nodes += A.Nodes;
    std::string Status = !Cert.Result.Solved ? "unsolved"
                         : !Cert.ok()        ? "FAIL"
                         : Cert.Strict       ? "ok-strict"
                                             : "ok";
    if (Cert.ok()) {
      ++NumOk;
      NumStrict += Cert.Strict;
    } else {
      ++NumFailed;
      std::cerr << "exact: certificate FAILED: " << Cert.describe() << "\n";
    }
    Sink.append(Row()
                    .addCell(Cell.P.M)
                    .addCell(Cell.P.N)
                    .addCell(Cell.CLabel)
                    .addCell(Cert.Result.Solved
                                 ? std::to_string(Cert.Result.ExactWords)
                                 : std::string("-"))
                    .addCell(formatBound(Cert.LowerWords))
                    .addCell(formatBound(Cert.RobsonWords))
                    .addCell(formatBound(Cert.Theorem2Words))
                    .addCell(formatBound(Cert.UpperWords))
                    .addCell(Nodes)
                    .addCell(Status));
  }

  // Ground truth must be monotone in the quota: a larger integer c (and
  // c = infinity above all of them) means strictly less compaction, so
  // the forced heap size can only grow. A violation convicts the solver,
  // not the bounds layer.
  unsigned NumMonotoneViolations = 0;
  std::map<std::pair<uint64_t, uint64_t>,
           std::vector<std::pair<uint64_t, uint64_t>>>
      ByCell; // (M, n) -> sorted (quota rank, exact)
  for (size_t I = 0; I != Cells.size(); ++I) {
    if (!Certs[I].Result.Solved)
      continue;
    uint64_t Rank = Cells[I].P.C == 0 ? UINT64_MAX : Cells[I].P.C;
    ByCell[{Cells[I].P.M, Cells[I].P.N}].push_back(
        {Rank, Certs[I].Result.ExactWords});
  }
  for (auto &[MN, Series] : ByCell) {
    std::sort(Series.begin(), Series.end());
    for (size_t I = 1; I < Series.size(); ++I)
      if (Series[I].second < Series[I - 1].second) {
        ++NumMonotoneViolations;
        std::cerr << "exact: non-monotone in c at M=" << MN.first
                  << " n=" << MN.second << ": exact dropped from "
                  << Series[I - 1].second << " to " << Series[I].second
                  << " as c grew\n";
      }
  }

  std::string WitnessDir = Opts.getString("witness-dir", "");
  if (!WitnessDir.empty()) {
    for (size_t I = 0; I != Cells.size(); ++I) {
      if (Certs[I].Result.Witness.empty())
        continue;
      const ExactParams &P = Cells[I].P;
      std::string Path = WitnessDir + "/exact-M" + std::to_string(P.M) +
                         "-n" + std::to_string(P.N) + "-c" +
                         Cells[I].CLabel + ".trace";
      std::ofstream OS(Path);
      if (!OS) {
        std::cerr << "error: cannot write witness '" << Path << "'\n";
        return 1;
      }
      OS << "# pcbound exact witness: M=" << P.M << " n=" << P.N
         << " c=" << Cells[I].CLabel << " proves HS >= "
         << Certs[I].Result.ExactWords << "\n";
      writeEventLog(OS, witnessToEventLog(Certs[I].Result.Witness));
    }
    std::cout << "# witness traces written to " << WitnessDir
              << "/ (replayable with pcbound replay-trace)\n";
  }

  if (!Sink.emit(Opts))
    return 1;
  bool Failed = NumFailed != 0 || NumMonotoneViolations != 0;
  std::cout << "exact: " << (Failed ? "FAIL" : "OK") << " — " << NumOk
            << " of " << Cells.size() << " cells certified (" << NumStrict
            << " strictly separating Theorem 1 from Theorem 2)\n";
  return Failed ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  if (Opts.positional().empty())
    return usage();
  const std::string &Command = Opts.positional()[0];
  if (Command == "bounds")
    return cmdBounds(Opts);
  if (Command == "plan")
    return cmdPlan(Opts);
  if (Command == "simulate")
    return cmdSimulate(Opts);
  if (Command == "profile")
    return cmdProfile(Opts);
  if (Command == "replay")
    return cmdReplay(Opts);
  if (Command == "sweep")
    return cmdSweep(Opts);
  if (Command == "fuzz")
    return cmdFuzz(Opts);
  if (Command == "replay-trace")
    return cmdReplayTrace(Opts);
  if (Command == "trace-record")
    return cmdTraceRecord(Opts);
  if (Command == "trace-run")
    return cmdTraceRun(Opts);
  if (Command == "serve")
    return cmdServe(Opts);
  if (Command == "exact")
    return cmdExact(Opts);
  if (Command == "policies") {
    std::cout << "# manager policies\n";
    for (const std::string &Policy : allManagerPolicies())
      std::cout << Policy << "\n";
    std::cout << "# programs\n";
    for (const std::string &Name : allProgramNames())
      std::cout << Name << "\n";
    return 0;
  }
  return usage();
}
