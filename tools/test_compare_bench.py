#!/usr/bin/env python3
"""Unit tests for compare_bench.py, run by ctest (compare_bench_unit).

Covers the gate's decision table: pass on a matching run, fail on
throughput and gated-phase regressions, tolerate ungated-phase noise,
reject grid mismatches, and — the regression this file pins — report
phases present on only one side as named warnings instead of silently
skipping them (new phase) or never mentioning them (vanished phase).
Also covers the reallocation family's quality gate: per-cell overhead
ratios (overhead_cells) fail on growth past --max-overhead-growth,
warn by name when a cell exists on only one side, and the mm.realloc
phase is gated like mm.compact.
"""

import contextlib
import copy
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import compare_bench


BASE = {
    "bench": "fleet",
    "arenas": [4, 8],
    "sessions": 100000,
    "total_steps": 1000,
    "steps_per_second": 1000.0,
    "per_phase": [
        {"section": "heap.place", "calls": 10, "total_ms": 1.0,
         "ns_per_call": 100.0},
        {"section": "mm.compact", "calls": 5, "total_ms": 1.0,
         "ns_per_call": 200.0},
        {"section": "exec.step", "calls": 2, "total_ms": 1.0,
         "ns_per_call": 500.0},
    ],
}

# A bench_realloc-shaped baseline: the overhead gate and the mm.realloc
# phase gate ride on the same comparison machinery.
REALLOC_BASE = {
    "bench": "realloc",
    "logm": 12,
    "logn": 6,
    "total_steps": 1455,
    "steps_per_second": 90000.0,
    "overhead_cells": [
        {"cell": "cohen-petrank/realloc-bucket", "overhead": 0.8421},
        {"cell": "update-mix/realloc-jin", "overhead": 1.0224},
        {"cell": "update-mix/realloc-never", "overhead": 0.0},
    ],
    "per_phase": [
        {"section": "mm.realloc", "calls": 50, "total_ms": 1.0,
         "ns_per_call": 300.0},
    ],
}


def run_compare(base, fresh, extra_args=()):
    """Runs compare_bench.main() on two in-memory reports; returns
    (exit_code, stdout_text)."""
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "base.json")
        fresh_path = os.path.join(tmp, "fresh.json")
        with open(base_path, "w") as f:
            json.dump(base, f)
        with open(fresh_path, "w") as f:
            json.dump(fresh, f)
        argv = ["compare_bench.py", base_path, fresh_path, *extra_args]
        out = io.StringIO()
        old_argv = sys.argv
        sys.argv = argv
        try:
            with contextlib.redirect_stdout(out), \
                 contextlib.redirect_stderr(out):
                code = compare_bench.main()
        finally:
            sys.argv = old_argv
        return code, out.getvalue()


class CompareBenchTest(unittest.TestCase):
    def test_identical_runs_pass(self):
        code, out = run_compare(BASE, copy.deepcopy(BASE))
        self.assertEqual(code, 0)
        self.assertIn("bench comparison OK", out)

    def test_throughput_regression_fails(self):
        fresh = copy.deepcopy(BASE)
        fresh["steps_per_second"] = 100.0
        code, out = run_compare(BASE, fresh)
        self.assertEqual(code, 1)
        self.assertIn("steps_per_second regressed", out)

    def test_gated_phase_regression_fails(self):
        fresh = copy.deepcopy(BASE)
        fresh["per_phase"][0]["ns_per_call"] = 200.0  # heap.place 2x
        code, out = run_compare(BASE, fresh)
        self.assertEqual(code, 1)
        self.assertIn("heap.place ns_per_call regressed", out)

    def test_ungated_phase_regression_passes(self):
        fresh = copy.deepcopy(BASE)
        fresh["per_phase"][2]["ns_per_call"] = 5000.0  # exec.step 10x
        code, _ = run_compare(BASE, fresh)
        self.assertEqual(code, 0)

    def test_grid_mismatch_fails(self):
        fresh = copy.deepcopy(BASE)
        fresh["total_steps"] = 999
        code, out = run_compare(BASE, fresh)
        self.assertEqual(code, 1)
        self.assertIn("grid mismatch", out)

    def test_new_phase_warns_by_name_and_passes(self):
        fresh = copy.deepcopy(BASE)
        fresh["per_phase"].append({"section": "serve.flush", "calls": 3,
                                   "total_ms": 1.0, "ns_per_call": 50.0})
        code, out = run_compare(BASE, fresh)
        self.assertEqual(code, 0)
        self.assertIn("warning: phase 'serve.flush' is new in the fresh run",
                      out)

    def test_vanished_phase_warns_by_name_and_passes(self):
        fresh = copy.deepcopy(BASE)
        fresh["per_phase"] = [p for p in fresh["per_phase"]
                              if p["section"] != "mm.compact"]
        code, out = run_compare(BASE, fresh)
        self.assertEqual(code, 0)
        self.assertIn("warning: phase 'mm.compact' is in the baseline but "
                      "missing", out)

    def test_gated_phase_calls_growth_fails(self):
        # The dual blind spot of the ns_per_call gate: mm.compact firing
        # 2x as often at identical per-call cost must fail.
        fresh = copy.deepcopy(BASE)
        fresh["per_phase"][1]["calls"] = 10  # mm.compact 5 -> 10
        code, out = run_compare(BASE, fresh)
        self.assertEqual(code, 1)
        self.assertIn("mm.compact now fires 100.0% more often", out)

    def test_gated_phase_small_calls_drift_passes(self):
        fresh = copy.deepcopy(BASE)
        fresh["per_phase"][0]["calls"] = 11  # heap.place +10%
        code, out = run_compare(BASE, fresh)
        self.assertEqual(code, 0)
        self.assertIn("10 -> 11 calls (+1)", out)

    def test_ungated_phase_calls_growth_passes(self):
        fresh = copy.deepcopy(BASE)
        fresh["per_phase"][2]["calls"] = 2000  # exec.step 1000x
        code, _ = run_compare(BASE, fresh)
        self.assertEqual(code, 0)

    def test_calls_gate_threshold_is_adjustable(self):
        fresh = copy.deepcopy(BASE)
        fresh["per_phase"][0]["calls"] = 11  # heap.place +10%
        code, out = run_compare(BASE, fresh,
                                ("--max-phase-calls-growth", "5"))
        self.assertEqual(code, 1)
        self.assertIn("heap.place now fires 10.0% more often", out)

    def test_new_gated_phase_is_not_gated_without_baseline(self):
        # A brand-new gated-prefix section can't regress against nothing:
        # it must warn, not fail, whatever its cost.
        fresh = copy.deepcopy(BASE)
        fresh["per_phase"].append({"section": "heap.move", "calls": 3,
                                   "total_ms": 9.0, "ns_per_call": 1e9})
        code, out = run_compare(BASE, fresh)
        self.assertEqual(code, 0)
        self.assertIn("warning: phase 'heap.move' is new in the fresh run",
                      out)

    def test_identical_overhead_cells_pass(self):
        code, out = run_compare(REALLOC_BASE, copy.deepcopy(REALLOC_BASE))
        self.assertEqual(code, 0)
        self.assertIn("bench comparison OK", out)

    def test_overhead_regression_fails(self):
        fresh = copy.deepcopy(REALLOC_BASE)
        fresh["overhead_cells"][1]["overhead"] = 1.2000  # jin +17%
        code, out = run_compare(REALLOC_BASE, fresh)
        self.assertEqual(code, 1)
        self.assertIn("overhead of update-mix/realloc-jin regressed", out)

    def test_overhead_improvement_passes(self):
        fresh = copy.deepcopy(REALLOC_BASE)
        fresh["overhead_cells"][0]["overhead"] = 0.5
        code, _ = run_compare(REALLOC_BASE, fresh)
        self.assertEqual(code, 0)

    def test_zero_overhead_baseline_is_strict(self):
        # A never-move cell has baseline 0.0; relative slack would allow
        # nothing and the epsilon must not allow a real move either.
        fresh = copy.deepcopy(REALLOC_BASE)
        fresh["overhead_cells"][2]["overhead"] = 0.0001
        code, out = run_compare(REALLOC_BASE, fresh)
        self.assertEqual(code, 1)
        self.assertIn("overhead of update-mix/realloc-never regressed", out)

    def test_overhead_threshold_is_adjustable(self):
        fresh = copy.deepcopy(REALLOC_BASE)
        fresh["overhead_cells"][1]["overhead"] = 1.0700  # jin +4.7%
        code, _ = run_compare(REALLOC_BASE, fresh)
        self.assertEqual(code, 1)
        code, _ = run_compare(REALLOC_BASE, fresh,
                              ("--max-overhead-growth", "10"))
        self.assertEqual(code, 0)

    def test_one_sided_overhead_cells_warn_and_pass(self):
        fresh = copy.deepcopy(REALLOC_BASE)
        fresh["overhead_cells"] = fresh["overhead_cells"][1:] + [
            {"cell": "update-comb/realloc-jin", "overhead": 9.9}]
        code, out = run_compare(REALLOC_BASE, fresh)
        self.assertEqual(code, 0)
        self.assertIn("warning: overhead cell 'cohen-petrank/realloc-bucket' "
                      "is in the baseline but missing", out)
        self.assertIn("warning: overhead cell 'update-comb/realloc-jin' is "
                      "new in the fresh run", out)

    def test_mm_realloc_phase_is_gated(self):
        fresh = copy.deepcopy(REALLOC_BASE)
        fresh["per_phase"][0]["ns_per_call"] = 600.0  # mm.realloc 2x
        code, out = run_compare(REALLOC_BASE, fresh)
        self.assertEqual(code, 1)
        self.assertIn("mm.realloc ns_per_call regressed", out)


if __name__ == "__main__":
    unittest.main()
