#!/usr/bin/env python3
"""Unit tests for compare_bench.py, run by ctest (compare_bench_unit).

Covers the gate's decision table: pass on a matching run, fail on
throughput and gated-phase regressions, tolerate ungated-phase noise,
reject grid mismatches, and — the regression this file pins — report
phases present on only one side as named warnings instead of silently
skipping them (new phase) or never mentioning them (vanished phase).
"""

import contextlib
import copy
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import compare_bench


BASE = {
    "bench": "fleet",
    "arenas": [4, 8],
    "sessions": 100000,
    "total_steps": 1000,
    "steps_per_second": 1000.0,
    "per_phase": [
        {"section": "heap.place", "calls": 10, "total_ms": 1.0,
         "ns_per_call": 100.0},
        {"section": "mm.compact", "calls": 5, "total_ms": 1.0,
         "ns_per_call": 200.0},
        {"section": "exec.step", "calls": 2, "total_ms": 1.0,
         "ns_per_call": 500.0},
    ],
}


def run_compare(base, fresh, extra_args=()):
    """Runs compare_bench.main() on two in-memory reports; returns
    (exit_code, stdout_text)."""
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "base.json")
        fresh_path = os.path.join(tmp, "fresh.json")
        with open(base_path, "w") as f:
            json.dump(base, f)
        with open(fresh_path, "w") as f:
            json.dump(fresh, f)
        argv = ["compare_bench.py", base_path, fresh_path, *extra_args]
        out = io.StringIO()
        old_argv = sys.argv
        sys.argv = argv
        try:
            with contextlib.redirect_stdout(out), \
                 contextlib.redirect_stderr(out):
                code = compare_bench.main()
        finally:
            sys.argv = old_argv
        return code, out.getvalue()


class CompareBenchTest(unittest.TestCase):
    def test_identical_runs_pass(self):
        code, out = run_compare(BASE, copy.deepcopy(BASE))
        self.assertEqual(code, 0)
        self.assertIn("bench comparison OK", out)

    def test_throughput_regression_fails(self):
        fresh = copy.deepcopy(BASE)
        fresh["steps_per_second"] = 100.0
        code, out = run_compare(BASE, fresh)
        self.assertEqual(code, 1)
        self.assertIn("steps_per_second regressed", out)

    def test_gated_phase_regression_fails(self):
        fresh = copy.deepcopy(BASE)
        fresh["per_phase"][0]["ns_per_call"] = 200.0  # heap.place 2x
        code, out = run_compare(BASE, fresh)
        self.assertEqual(code, 1)
        self.assertIn("heap.place ns_per_call regressed", out)

    def test_ungated_phase_regression_passes(self):
        fresh = copy.deepcopy(BASE)
        fresh["per_phase"][2]["ns_per_call"] = 5000.0  # exec.step 10x
        code, _ = run_compare(BASE, fresh)
        self.assertEqual(code, 0)

    def test_grid_mismatch_fails(self):
        fresh = copy.deepcopy(BASE)
        fresh["total_steps"] = 999
        code, out = run_compare(BASE, fresh)
        self.assertEqual(code, 1)
        self.assertIn("grid mismatch", out)

    def test_new_phase_warns_by_name_and_passes(self):
        fresh = copy.deepcopy(BASE)
        fresh["per_phase"].append({"section": "serve.flush", "calls": 3,
                                   "total_ms": 1.0, "ns_per_call": 50.0})
        code, out = run_compare(BASE, fresh)
        self.assertEqual(code, 0)
        self.assertIn("warning: phase 'serve.flush' is new in the fresh run",
                      out)

    def test_vanished_phase_warns_by_name_and_passes(self):
        fresh = copy.deepcopy(BASE)
        fresh["per_phase"] = [p for p in fresh["per_phase"]
                              if p["section"] != "mm.compact"]
        code, out = run_compare(BASE, fresh)
        self.assertEqual(code, 0)
        self.assertIn("warning: phase 'mm.compact' is in the baseline but "
                      "missing", out)

    def test_gated_phase_calls_growth_fails(self):
        # The dual blind spot of the ns_per_call gate: mm.compact firing
        # 2x as often at identical per-call cost must fail.
        fresh = copy.deepcopy(BASE)
        fresh["per_phase"][1]["calls"] = 10  # mm.compact 5 -> 10
        code, out = run_compare(BASE, fresh)
        self.assertEqual(code, 1)
        self.assertIn("mm.compact now fires 100.0% more often", out)

    def test_gated_phase_small_calls_drift_passes(self):
        fresh = copy.deepcopy(BASE)
        fresh["per_phase"][0]["calls"] = 11  # heap.place +10%
        code, out = run_compare(BASE, fresh)
        self.assertEqual(code, 0)
        self.assertIn("10 -> 11 calls (+1)", out)

    def test_ungated_phase_calls_growth_passes(self):
        fresh = copy.deepcopy(BASE)
        fresh["per_phase"][2]["calls"] = 2000  # exec.step 1000x
        code, _ = run_compare(BASE, fresh)
        self.assertEqual(code, 0)

    def test_calls_gate_threshold_is_adjustable(self):
        fresh = copy.deepcopy(BASE)
        fresh["per_phase"][0]["calls"] = 11  # heap.place +10%
        code, out = run_compare(BASE, fresh,
                                ("--max-phase-calls-growth", "5"))
        self.assertEqual(code, 1)
        self.assertIn("heap.place now fires 10.0% more often", out)

    def test_new_gated_phase_is_not_gated_without_baseline(self):
        # A brand-new gated-prefix section can't regress against nothing:
        # it must warn, not fail, whatever its cost.
        fresh = copy.deepcopy(BASE)
        fresh["per_phase"].append({"section": "heap.move", "calls": 3,
                                   "total_ms": 9.0, "ns_per_call": 1e9})
        code, out = run_compare(BASE, fresh)
        self.assertEqual(code, 0)
        self.assertIn("warning: phase 'heap.move' is new in the fresh run",
                      out)


if __name__ == "__main__":
    unittest.main()
