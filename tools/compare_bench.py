#!/usr/bin/env python3
"""Compare a fresh bench_pf_sim JSON against the committed baseline.

Usage: compare_bench.py BASELINE.json FRESH.json [--max-regression PCT]

Fails (exit 1) when the fresh run's steps_per_second has regressed by
more than --max-regression percent (default 20) relative to the
baseline, or when the two runs measured different grids (comparing
steps/sec across different grids is meaningless). Also prints the
per-phase ns_per_call and calls deltas so CI logs show where time
moved, and fails when a substrate phase (heap.*, fsi.*, mm.compact)
regressed by more than --max-phase-regression percent (default 25):
the end-to-end number can hide a hot-path regression behind an
unrelated win, the per-phase gate cannot.

The calls gate closes the dual blind spot: a change that makes a hot
phase *fire* more often (say, a compaction trigger running twice per
step) can keep ns_per_call flat while the total cost balloons. Unlike
timings, call counts on an identical grid are deterministic, so growth
past --max-phase-calls-growth percent (default 25) in a gated phase
fails the comparison; an intended cadence change must regenerate the
committed baseline.

The overhead gate covers the reallocation family's quality metric the
same way the throughput gate covers speed: baselines that carry
"overhead_cells" (bench_realloc's per-cell words-moved-per-word-
allocated ratios) fail when any cell's fresh overhead grows more than
--max-overhead-growth percent over the baseline. Overhead on an
identical grid is deterministic, so any growth is a behaviour change —
an intended algorithm change must regenerate the committed baseline.
Cells present on only one side warn by name, like phases.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--max-regression", type=float, default=20.0,
                    help="maximum steps_per_second drop, in percent")
    ap.add_argument("--max-phase-regression", type=float, default=25.0,
                    help="maximum ns_per_call growth for the gated "
                         "substrate phases (heap.*, fsi.*, mm.compact), "
                         "in percent")
    ap.add_argument("--max-phase-calls-growth", type=float, default=25.0,
                    help="maximum calls growth for the gated substrate "
                         "phases, in percent (counts are deterministic "
                         "per grid, so growth means the phase fires "
                         "more often, not runner noise)")
    ap.add_argument("--max-overhead-growth", type=float, default=1.0,
                    help="maximum growth of any overhead_cells ratio "
                         "(words moved per word allocated), in percent; "
                         "ratios are deterministic per grid")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    # The throughput number is only comparable on an identical grid.
    for key in ("bench", "logm", "logn", "cs", "total_steps"):
        if base.get(key) != fresh.get(key):
            print(f"error: grid mismatch on '{key}': baseline "
                  f"{base.get(key)!r} vs fresh {fresh.get(key)!r}",
                  file=sys.stderr)
            return 1

    b, f = base["steps_per_second"], fresh["steps_per_second"]
    change = 100.0 * (f - b) / b
    print(f"steps_per_second: baseline {b}, fresh {f} ({change:+.1f}%)")

    def gated(section):
        return (section.startswith("heap.") or section.startswith("fsi.")
                or section in ("mm.compact", "mm.realloc"))

    failed = False
    base_phases = {p["section"]: p for p in base.get("per_phase", [])}
    fresh_phases = {p["section"]: p for p in fresh.get("per_phase", [])}
    # A phase present on only one side is reported by name rather than
    # silently skipped (or KeyError'd): a brand-new instrumented section
    # must not break the gate, and a section that stopped firing is
    # exactly the kind of change a reviewer should see in the CI log.
    for section in sorted(base_phases.keys() - fresh_phases.keys()):
        print(f"warning: phase '{section}' is in the baseline but missing "
              f"from the fresh run (not gated)")
    for section in sorted(fresh_phases.keys() - base_phases.keys()):
        print(f"warning: phase '{section}' is new in the fresh run "
              f"(no baseline; not gated)")
    for p in fresh.get("per_phase", []):
        bp = base_phases.get(p["section"])
        if bp is None:
            continue
        d = p["ns_per_call"] - bp["ns_per_call"]
        dc = p["calls"] - bp["calls"]
        print(f"  {p['section']:>12}: {bp['ns_per_call']:>10.1f} -> "
              f"{p['ns_per_call']:>10.1f} ns/call ({d:+.1f}), "
              f"{bp['calls']} -> {p['calls']} calls ({dc:+d})")
        if gated(p["section"]) and bp["ns_per_call"] > 0:
            growth = 100.0 * d / bp["ns_per_call"]
            if growth > args.max_phase_regression:
                print(f"error: {p['section']} ns_per_call regressed "
                      f"{growth:.1f}% (> {args.max_phase_regression}% "
                      f"allowed)", file=sys.stderr)
                failed = True
        if gated(p["section"]) and bp["calls"] > 0:
            calls_growth = 100.0 * dc / bp["calls"]
            if calls_growth > args.max_phase_calls_growth:
                print(f"error: {p['section']} now fires {calls_growth:.1f}% "
                      f"more often ({bp['calls']} -> {p['calls']} calls, "
                      f"> {args.max_phase_calls_growth}% allowed)",
                      file=sys.stderr)
                failed = True

    # The reallocation family's quality gate: per-cell overhead ratios.
    base_cells = {c["cell"]: c for c in base.get("overhead_cells", [])}
    fresh_cells = {c["cell"]: c for c in fresh.get("overhead_cells", [])}
    for cell in sorted(base_cells.keys() - fresh_cells.keys()):
        print(f"warning: overhead cell '{cell}' is in the baseline but "
              f"missing from the fresh run (not gated)")
    for cell in sorted(fresh_cells.keys() - base_cells.keys()):
        print(f"warning: overhead cell '{cell}' is new in the fresh run "
              f"(no baseline; not gated)")
    for cell in sorted(base_cells.keys() & fresh_cells.keys()):
        b_over = base_cells[cell]["overhead"]
        f_over = fresh_cells[cell]["overhead"]
        # The absolute epsilon keeps a zero-overhead baseline (the
        # never-move envelope) strict without tripping on formatting.
        allowed = b_over + max(b_over * args.max_overhead_growth / 100.0,
                               1e-9)
        if f_over > allowed:
            print(f"error: overhead of {cell} regressed: {b_over} -> "
                  f"{f_over} words moved per word allocated "
                  f"(> {args.max_overhead_growth}% growth allowed)",
                  file=sys.stderr)
            failed = True

    if change < -args.max_regression:
        print(f"error: steps_per_second regressed {-change:.1f}% "
              f"(> {args.max_regression}% allowed)", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print("bench comparison OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
