#!/usr/bin/env python3
"""Aggregate line coverage from a --coverage (gcov) build tree.

Usage: coverage_summary.py BUILD_DIR [--source-prefix src/]

Walks BUILD_DIR for .gcda note files, runs `gcov --json-format` on each,
and aggregates executable/executed line counts per source file, keeping
only files whose repo-relative path starts with the given prefix (the
library code under src/ by default — tests and benches measuring
themselves is not coverage). Prints a per-file table plus the total,
mirroring `lcov --list` closely enough for CI log scraping, and writes
nothing to the source tree.

This exists because the minimal container has gcov but not lcov/gcovr;
the CI coverage job uses lcov for its log summary, while this script
gives the same headline number anywhere gcov runs.
"""

import argparse
import gzip
import json
import os
import subprocess
import sys
import tempfile


def collect_gcda(build_dir):
    # Absolute paths: gcov runs from a scratch directory (it drops its
    # .gcov.json.gz output in the cwd) and must still find these.
    for root, _dirs, files in os.walk(os.path.abspath(build_dir)):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("build_dir")
    parser.add_argument("--source-prefix", default="src/",
                        help="keep only sources under this repo-relative "
                             "prefix (default: src/)")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    gcda = sorted(collect_gcda(args.build_dir))
    if not gcda:
        print(f"error: no .gcda files under {args.build_dir}; build with "
              "the 'coverage' preset and run ctest first", file=sys.stderr)
        return 1

    # line number -> hit?  per canonical source path.  One gcov run per
    # .gcda: gcov names its JSON after the source basename, so batching
    # translation units that share a basename would silently drop one.
    lines = {}
    with tempfile.TemporaryDirectory() as scratch:
        for data_file in gcda:
            subprocess.run(["gcov", "--json-format", data_file],
                           cwd=scratch, check=False,
                           stdout=subprocess.DEVNULL,
                           stderr=subprocess.DEVNULL)
            for name in os.listdir(scratch):
                if not name.endswith(".gcov.json.gz"):
                    continue
                path = os.path.join(scratch, name)
                with gzip.open(path, "rt", encoding="utf-8") as handle:
                    data = json.load(handle)
                os.unlink(path)
                for unit in data.get("files", []):
                    source = os.path.realpath(
                        os.path.join(data.get("current_working_directory",
                                              "."), unit["file"]))
                    rel = os.path.relpath(source, repo_root)
                    if not rel.startswith(args.source_prefix):
                        continue
                    per_file = lines.setdefault(rel, {})
                    for line in unit.get("lines", []):
                        number = line["line_number"]
                        per_file[number] = (per_file.get(number, False)
                                            or line["count"] > 0)

    if not lines:
        print("error: no instrumented sources matched prefix "
              f"'{args.source_prefix}'", file=sys.stderr)
        return 1

    total_lines = total_hit = 0
    width = max(len(rel) for rel in lines)
    print(f"{'file':<{width}}  coverage")
    for rel in sorted(lines):
        per_file = lines[rel]
        if not per_file:  # headers with no executable lines
            continue
        hit = sum(1 for covered in per_file.values() if covered)
        total_lines += len(per_file)
        total_hit += hit
        print(f"{rel:<{width}}  {100.0 * hit / len(per_file):5.1f}% "
              f"({hit}/{len(per_file)})")
    print(f"{'TOTAL':<{width}}  {100.0 * total_hit / total_lines:5.1f}% "
          f"({total_hit}/{total_lines} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
