//===- examples/fragmentation_attack.cpp - Watch an adversary work --------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Runs one of the paper's adversaries against a manager of your choice
// and renders the heap after every step, so you can watch the
// fragmentation build: the adversary leaves "pinning" objects in every
// chunk it touches, and each round of larger allocations is forced into
// fresh memory.
//
// Usage: fragmentation_attack [program=robson|cohen-petrank]
//                             [policy=first-fit] [logm=10] [logn=5] [c=20]
//
//===----------------------------------------------------------------------===//

#include "adversary/CohenPetrankProgram.h"
#include "adversary/RobsonProgram.h"
#include "bounds/CohenPetrankBounds.h"
#include "bounds/RobsonBounds.h"
#include "driver/Execution.h"
#include "heap/HeapImage.h"
#include "mm/ManagerFactory.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <iostream>
#include <memory>

using namespace pcb;

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  std::string ProgramName = Opts.getString("program", "robson");
  std::string Policy = Opts.getString("policy", "first-fit");
  unsigned LogM = unsigned(Opts.getUInt("logm", 10));
  unsigned LogN = unsigned(Opts.getUInt("logn", 5));
  double C = Opts.getDouble("c", 20.0);
  uint64_t M = pow2(LogM);
  uint64_t N = pow2(LogN);

  Heap H;
  auto MM = createManager(Policy, H, C);
  if (!MM) {
    std::cerr << "error: unknown policy '" << Policy << "'\n";
    return 1;
  }

  std::unique_ptr<Program> Prog;
  double Theory = 0.0;
  if (ProgramName == "robson") {
    Prog = std::make_unique<RobsonProgram>(M, LogN);
    Theory = robsonWasteFactor(BoundParams{M, N, C});
  } else if (ProgramName == "cohen-petrank") {
    Prog = std::make_unique<CohenPetrankProgram>(M, N, C);
    Theory = static_cast<CohenPetrankProgram &>(*Prog).targetWasteFactor();
  } else {
    std::cerr << "error: unknown program '" << ProgramName << "'\n";
    return 1;
  }

  std::cout << "# " << Prog->name() << " vs " << MM->name() << " (M="
            << formatWords(M) << ", n=" << formatWords(N) << ", c=" << C
            << ")\n"
            << "# '#' used, ':' partly used, '.' free; one row per step\n\n";

  Execution E(*MM, *Prog, M);
  while (true) {
    bool More = E.runStep();
    const HeapStats &S = H.stats();
    std::cout << "step " << E.stepsRun() << ": live=" << S.LiveWords
              << " heap=" << S.HighWaterMark << " ("
              << formatDouble(double(S.HighWaterMark) / double(M), 2)
              << " x M), moved=" << S.MovedWords << "\n"
              << renderHeapImage(H, S.HighWaterMark, 72, 2) << "\n\n";
    if (!More)
      break;
  }

  ExecutionResult R = E.result();
  std::cout << "final waste factor " << formatDouble(R.wasteFactor(M), 3)
            << " x M";
  if (Theory > 0.0)
    std::cout << "  (theory says >= " << formatDouble(Theory, 3)
              << " x M for this setting)";
  std::cout << "\n";
  return 0;
}
