//===- examples/compaction_tradeoff.cpp - How much moving buys ------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// The question a runtime designer actually asks: "if my collector can
// afford to move p% of all allocated bytes, what heap headroom must I
// still provision for the worst case?" This example answers it two ways
// for a range of p: with Theorem 1's closed form (at the paper's full
// parameters) and by measurement (the PF adversary against a compacting
// manager at simulation scale).
//
// Usage: compaction_tradeoff [logm=15] [logn=8] [policy=evacuating]
//
//===----------------------------------------------------------------------===//

#include "adversary/CohenPetrankProgram.h"
#include "bounds/CohenPetrankBounds.h"
#include "bounds/Planning.h"
#include "driver/Execution.h"
#include "mm/ManagerFactory.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <iostream>

using namespace pcb;

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  unsigned LogM = unsigned(Opts.getUInt("logm", 15));
  unsigned LogN = unsigned(Opts.getUInt("logn", 8));
  std::string Policy = Opts.getString("policy", "evacuating");
  uint64_t M = pow2(LogM);
  uint64_t N = pow2(LogN);

  std::cout
      << "# If the collector may move p% of all allocated space, the\n"
      << "# worst-case heap must still be at least h(p) x live space:\n"
      << "#   paper_h      at M=256MB, n=1MB (the paper's Figure 1)\n"
      << "#   measured     PF adversary vs '" << Policy << "' at M="
      << formatWords(M) << ", n=" << formatWords(N) << "\n"
      << "#   sim_h        the same closed form at simulation scale\n\n";

  Table T({"move_%", "c", "paper_h", "sim_h", "measured", "moved_words"});
  for (double Percent : {10.0, 5.0, 4.0, 2.0, 1.333, 1.0}) {
    double C = 100.0 / Percent;
    BoundParams Paper{pow2(28), pow2(20), C};
    BoundParams Sim{M, N, C};

    Heap H;
    auto MM = createManager(Policy, H, C);
    if (!MM) {
      std::cerr << "error: unknown policy '" << Policy << "'\n";
      return 1;
    }
    CohenPetrankProgram PF(M, N, C);
    Execution E(*MM, PF, M);
    ExecutionResult R = E.run();

    T.beginRow();
    T.addCell(Percent, 1);
    T.addCell(C, 1);
    T.addCell(cohenPetrankLowerWasteFactor(Paper), 2);
    T.addCell(cohenPetrankLowerWasteFactor(Sim), 2);
    T.addCell(R.wasteFactor(M), 2);
    T.addCell(R.MovedWords);
  }
  T.printAligned(std::cout);

  std::cout << "\n# Reading: provisioning less than paper_h x live space\n"
            << "# cannot be guaranteed safe, no matter how clever the\n"
            << "# manager — that is the content of Theorem 1.\n";

  // The inverse question, answered by the planning API.
  std::cout << "\n# And inverted: to keep the guaranteed worst case at or"
            << " below a target\n# (at M=256MB, n=1MB), the collector must"
            << " be able to move at least:\n";
  Table Inverse({"target_waste", "min_move_%", "max_c"});
  for (double Target : {2.0, 2.5, 3.0, 3.5}) {
    CompactionPlan Plan = planCompactionBudget(pow2(28), pow2(20), Target);
    Inverse.beginRow();
    Inverse.addCell(Target, 1);
    if (Plan.Feasible) {
      Inverse.addCell(100.0 * Plan.MinMovedFraction, 2);
      Inverse.addCell(Plan.MaxQuota, 1);
    } else {
      Inverse.addCell(std::string("infeasible"));
      Inverse.addCell(std::string("-"));
    }
  }
  Inverse.printAligned(std::cout);
  return 0;
}
