//===- examples/potential_function.cpp - Watching the proof work ----------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Theorem 1's engine is the potential function u(t) (Definition 4.4): it
// never decreases (Claim 4.16), it never exceeds the heap footprint, and
// the adversary pumps it up by 3/4 of every allocation minus 2^sigma
// times the compaction spent against it. This example runs PF and plots
// both u(t) and HS(t) per step — the lower bound is literally the gap
// the manager can never close.
//
// Usage: potential_function [policy=evacuating] [logm=14] [logn=8] [c=30]
//
//===----------------------------------------------------------------------===//

#include "adversary/CohenPetrankProgram.h"
#include "driver/Execution.h"
#include "mm/ManagerFactory.h"
#include "support/AsciiChart.h"
#include "support/MathUtils.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <iostream>

using namespace pcb;

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  std::string Policy = Opts.getString("policy", "evacuating");
  unsigned LogM = unsigned(Opts.getUInt("logm", 14));
  unsigned LogN = unsigned(Opts.getUInt("logn", 8));
  double C = Opts.getDouble("c", 30.0);
  uint64_t M = pow2(LogM);
  uint64_t N = pow2(LogN);

  Heap H;
  auto MM = createManager(Policy, H, C, /*LiveBound=*/M);
  if (!MM) {
    std::cerr << "error: unknown policy '" << Policy << "'\n";
    return 1;
  }
  CohenPetrankProgram PF(M, N, C);
  Execution E(*MM, PF, M);

  ChartSeries Footprint{"heap footprint HS(t) / M", '#', {}};
  ChartSeries Potential{"potential u(t) / M (Definition 4.4)", 'u', {}};
  ChartSeries Live{"live words / M", '.', {}};
  E.addStepObserver([&](const Execution &Ex) {
    const HeapStats &S = Ex.heap().stats();
    Footprint.Y.push_back(double(S.HighWaterMark) / double(M));
    Potential.Y.push_back(PF.potential() / double(M));
    Live.Y.push_back(double(S.LiveWords) / double(M));
  });
  ExecutionResult R = E.run();

  std::cout << "# PF vs " << MM->name() << " (M=" << formatWords(M)
            << ", n=" << formatWords(N) << ", c=" << C
            << "): sigma=" << PF.sigma()
            << ", target h=" << formatDouble(PF.targetWasteFactor(), 3)
            << "\n\n";

  AsciiChart::Options ChartOpts;
  ChartOpts.XLabel = "step";
  ChartOpts.Width = 72;
  AsciiChart Chart(0.0, double(R.Steps), ChartOpts);
  Chart.addSeries(Footprint);
  Chart.addSeries(Potential);
  Chart.addSeries(Live);
  Chart.print(std::cout);

  std::cout << "\nfinal: HS = " << formatDouble(R.wasteFactor(M), 3)
            << " x M, u = " << formatDouble(PF.potential() / double(M), 3)
            << " x M, moved = " << R.MovedWords << " words\n"
            << "Claim 4.16: u never decreased; u <= HS throughout — the\n"
            << "manager cannot shrink the heap below where u has climbed.\n";
  return 0;
}
