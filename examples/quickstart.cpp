//===- examples/quickstart.cpp - pcbound in five minutes ------------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// The smallest end-to-end tour of the library's three layers:
//
//   1. bounds/  — evaluate the paper's formulas for your parameters;
//   2. heap/ + mm/ — drive a simulated memory manager by hand;
//   3. adversary/ + driver/ — run a canned adversarial execution.
//
// Build and run:   ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "adversary/RobsonProgram.h"
#include "bounds/BenderskyPetrankBounds.h"
#include "bounds/CohenPetrankBounds.h"
#include "bounds/RobsonBounds.h"
#include "driver/Execution.h"
#include "heap/HeapImage.h"
#include "mm/SequentialFitManagers.h"
#include "support/Table.h"

#include <iostream>

using namespace pcb;

int main() {
  // --- 1. The paper's formulas at its realistic parameters. -------------
  BoundParams P;
  P.M = pow2(28); // 256MB of live data (1-byte words)
  P.N = pow2(20); // objects up to 1MB
  P.C = 50.0;     // the manager may move 1/50 = 2% of allocations

  std::cout << "Theorem 1: with M=256MB, n=1MB and 2% compaction, any\n"
            << "memory manager can be forced to a heap of "
            << formatDouble(cohenPetrankLowerWasteFactor(P), 2)
            << " x M (paper: ~3.15).\n"
            << "Robson (no compaction at all): "
            << formatDouble(robsonWasteFactor(P), 2) << " x M.\n"
            << "Naive compacting upper bound ((c+1)M): "
            << formatDouble(benderskyPetrankUpperWasteFactor(P), 0)
            << " x M.\n\n";

  // --- 2. Drive a manager by hand. ---------------------------------------
  Heap H;
  FirstFitManager MM(H, /*C=*/50.0);
  ObjectId A = MM.allocate(6);
  ObjectId B = MM.allocate(10);
  ObjectId C = MM.allocate(6);
  MM.free(B); // leaves a 10-word hole between A and C
  ObjectId D = MM.allocate(4); // first fit reuses the hole
  std::cout << "Hand-driven first fit: A@" << H.object(A).Address << " C@"
            << H.object(C).Address << " D@" << H.object(D).Address
            << " (D reused B's hole)\n"
            << "Heap [0, " << H.stats().HighWaterMark
            << "): " << renderHeapImage(H, H.stats().HighWaterMark, 22, 1)
            << "\n\n";

  // --- 3. A canned adversarial execution. --------------------------------
  const uint64_t M = pow2(12);
  const unsigned LogN = 6;
  Heap H2;
  FirstFitManager MM2(H2, /*C=*/1e18); // effectively non-moving
  RobsonProgram PR(M, LogN);
  Execution E(MM2, PR, M);
  ExecutionResult R = E.run();
  BoundParams Small{M, pow2(LogN), 10.0};
  std::cout << "Robson's bad program vs first fit (M=" << M
            << " words, n=" << pow2(LogN) << "):\n"
            << "  heap used      " << R.HeapSize << " words ("
            << formatDouble(R.wasteFactor(M), 3) << " x M)\n"
            << "  theory         " << formatDouble(robsonHeapWords(Small), 0)
            << " words (" << formatDouble(robsonWasteFactor(Small), 3)
            << " x M)\n"
            << "  live peak      " << R.PeakLiveWords << " words\n";
  return 0;
}
