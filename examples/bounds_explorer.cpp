//===- examples/bounds_explorer.cpp - All bounds for your parameters ------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Evaluates every bound in the paper (and its two predecessor papers)
// for user-supplied parameters and prints them with one-line readings.
//
// Usage: bounds_explorer [M=256M] [n=1M] [c=50]
//   M  maximum simultaneously-live space (words; K/M/G accepted)
//   n  maximum object size (words, power of two)
//   c  compaction quota denominator (the manager moves <= 1/c of
//      allocations)
//
//===----------------------------------------------------------------------===//

#include "bounds/BenderskyPetrankBounds.h"
#include "bounds/CohenPetrankBounds.h"
#include "bounds/RobsonBounds.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <iostream>

using namespace pcb;

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  BoundParams P;
  P.M = Opts.getUInt("M", pow2(28));
  P.N = Opts.getUInt("n", pow2(20));
  P.C = Opts.getDouble("c", 50.0);
  if (!P.valid()) {
    std::cerr << "error: need power-of-two M >= n >= 2 and c > 1\n";
    return 1;
  }

  std::cout << "Parameters: live space M = " << formatWords(P.M)
            << " words, max object n = " << formatWords(P.N)
            << " words (log n = " << P.logN() << "), quota c = " << P.C
            << " (may move " << formatDouble(100.0 / P.C, 2)
            << "% of allocations)\n\n";

  unsigned Sigma = cohenPetrankOptimalSigma(P);
  double H = cohenPetrankLowerWasteFactor(P);

  Table T({"bound", "waste_factor", "heap_words"});
  auto Row = [&](const std::string &Name, double Factor) {
    T.beginRow();
    T.addCell(Name);
    T.addCell(Factor, 3);
    T.addCell(uint64_t(Factor * double(P.M)));
  };
  Row("lower: Cohen-Petrank Theorem 1", H);
  Row("lower: Bendersky-Petrank POPL'11", benderskyPetrankLowerWasteFactor(P));
  Row("lower/upper: Robson (no moving)", robsonWasteFactor(P));
  Row("upper: Bendersky-Petrank (c+1)M", benderskyPetrankUpperWasteFactor(P));
  Row("upper: Robson general (2x)", robsonGeneralWasteFactor(P));
  if (P.C > 0.5 * double(P.logN()))
    Row("upper: Cohen-Petrank Theorem 2", cohenPetrankUpperWasteFactor(P));
  Row("upper: best known combined", newBestUpperWasteFactor(P));
  T.printAligned(std::cout);

  std::cout << "\nReading:\n"
            << "  * No memory manager that moves at most 1/"
            << formatDouble(P.C, 0) << " of allocations can guarantee a\n"
            << "    heap under " << formatDouble(H, 2)
            << " x the live space (optimal adversary density 2^-" << Sigma
            << ").\n"
            << "  * A manager exists that never needs more than "
            << formatDouble(newBestUpperWasteFactor(P), 2)
            << " x the live space.\n"
            << "  * Without any compaction the tight bound is "
            << formatDouble(robsonWasteFactor(P), 2)
            << " x (Robson, power-of-two programs).\n";
  return 0;
}
